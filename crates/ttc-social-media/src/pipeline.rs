//! Staged, asynchronous ingestion pipeline: long-lived stages connected by
//! bounded queues, merged on a per-shard watermark instead of a barrier.
//!
//! The synchronous sharded driver ([`crate::shard::ShardedSolution`] under
//! [`StreamDriver`]) runs every micro-batch as route → barrier → merge: all
//! shards must finish batch `t` before any shard may start `t + 1`, so one
//! straggler shard idles the other `N − 1` and throughput is bounded by the
//! per-batch worst case. This module decouples the stages:
//!
//! ```text
//!  ingest ──▶ coalesce + route ──▶ shard 0 apply ──▶
//!  (seq      (supervisor: owns     shard 1 apply ──▶  watermark merge ──▶ results
//!   stamp)    ShardRouter, logs,└▶ shard N−1 apply ─▶  (emits batch t once
//!             restores workers)                         every shard passed t)
//!        bounded sync_channel queues between stages
//! ```
//!
//! * Every stage is a long-lived thread; neighbours are connected by bounded
//!   [`std::sync::mpsc::sync_channel`] queues (depth
//!   [`PipelineConfig::queue_depth`]), so a fast stage runs ahead by at most the
//!   queue depth and then **backpressures** instead of buffering unboundedly.
//!   Shard `s` can be applying batch `t + queue_depth` while a straggler shard
//!   is still on batch `t`.
//! * Batches carry **sequence numbers** stamped at ingest
//!   ([`datagen::stream::SequencedBatch`]). The merger tracks, per shard, the
//!   watermark of completed batches and emits the global top-k for batch `t`
//!   only once every shard's watermark has passed `t` — union rebuild when any
//!   shard reported an (effective) retraction in `t`, [`TopKTracker`]
//!   `merge_changes` otherwise: exactly the [`ShardMerger`] policy of the
//!   synchronous driver, which is why the two engines are byte-identical per
//!   batch (`tests/pipelined_differential.rs` enforces this, with injected
//!   per-stage delays forcing out-of-order shard completion).
//! * The per-shard evaluators are the same
//!   [`ShardEvaluator`]s the synchronous driver
//!   drives — each is simply *moved into* its worker thread.
//! * The route stage doubles as the **supervisor**: with
//!   [`PipelineConfig::recovery`] enabled it keeps a sequenced per-shard
//!   changeset log, the workers publish periodic checkpoints of their mirror
//!   sub-networks into a [`CheckpointStore`], and when a worker dies (the
//!   [`PipelineConfig::kill_shards`] chaos injection, or a panicking
//!   evaluator) the supervisor restores the latest snapshot through the
//!   run's [`ShardFactory`], replays the log through the ordinary apply path,
//!   and the replacement rejoins the watermark merge with no visible gap —
//!   the merger deduplicates replayed outcomes, which deterministic replay
//!   makes byte-identical to the lost originals (see [`crate::recovery`] and
//!   DESIGN.md §5.7). Without recovery a dead worker still tears the run down
//!   into [`EngineError::TruncatedRun`].
//!
//! Both engines implement [`IngestEngine`], so benchmarks and differential
//! tests swap them freely. Latency semantics differ by design: the synchronous
//! driver reports per-batch *service* time (update call duration), the
//! pipelined engine reports **end-to-end** latency (ingest enqueue → merged
//! result emitted) and wall-clock sustained throughput over the measured
//! window, which is the honest figure once batches overlap.
//!
//! [`TopKTracker`]: crate::top_k::TopKTracker

use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

// Every synchronization primitive comes from the `crate::sync` facade: plain
// std re-exports in production builds, loomette shadows under `model-check`
// (which is how tests/model_check.rs exhaustively explores this module's
// interleavings). Do not import from `std::sync`/`std::thread` here.
use crate::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use crate::sync::panic::{catch_unwind, AssertUnwindSafe};
use crate::sync::{thread, Arc};

use datagen::partition::{ModuloPartitioner, Partitioner};
use datagen::stream::sequenced;
use datagen::{apply_changeset, ChangeSet, SocialNetwork};

use crate::recovery::{
    ChangesetLog, CheckpointStorage, CheckpointStore, FileCheckpointStore, LogEntry,
    RecoveryConfig, RecoveryStats, ShardCheckpoint,
};
use crate::serve::{view_channel, CandidateSnapshot, ViewBuilder, ViewPublisher, ViewReader};
use crate::shard::{
    load_shards_parts, ShardEvaluator, ShardFactory, ShardMerger, ShardRouter, ShardRouterStats,
};
use crate::solution::Solution;
use crate::stream::{coalesce, percentile, StreamDriver, StreamReport};
use crate::top_k::RankedEntry;

// ---------------------------------------------------------------------------
// Engine abstraction
// ---------------------------------------------------------------------------

/// Why an ingestion run failed to produce a trustworthy report.
///
/// The pipelined stage graph tears down from the front on failure (a dead
/// stage disconnects its queues and every neighbour stops), so a dying shard
/// worker used to look exactly like a short stream: the merger emitted the
/// batches that made it through and the report claimed success over fewer
/// batches than were actually ingested. [`IngestEngine::run`] now returns this
/// error instead of that silently truncated report — unless
/// [`PipelineConfig::recovery`] is enabled, in which case the dead worker is
/// restored and the run completes normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The merge stage emitted fewer batches than the ingest stage accepted
    /// from the stream: a stage died mid-run and the tail of the stream was
    /// dropped on the floor.
    TruncatedRun {
        /// Batches the ingest stage pulled from the stream and enqueued.
        ingested: usize,
        /// Batches the merge stage actually emitted.
        merged: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TruncatedRun { ingested, merged } => write!(
                f,
                "pipeline truncated: ingested {ingested} batches but merged only {merged} \
                 — a stage died mid-run"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// What an ingestion engine produces: the usual throughput/latency report, the
/// per-batch results (the differential gates compare these byte-for-byte), and
/// pipeline-internal statistics when the engine is staged.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Throughput and latency of the measured window, in the same shape both
    /// engines share (see the [module documentation](self) for the latency
    /// semantics of each).
    pub stream: StreamReport,
    /// The query result after every **measured** batch, in batch order
    /// (warm-up excluded). When at least one batch was measured,
    /// `results.last()` equals `stream.final_result`; when the stream ended
    /// inside the warm-up window this is empty while `stream.final_result`
    /// still reports the state after the batches that *were* applied.
    pub results: Vec<String>,
    /// Queue/backpressure/watermark statistics — `None` for the synchronous
    /// engine, which has no queues.
    pub pipeline: Option<PipelineStats>,
}

/// One interface over both ingestion engines — the synchronous barrier driver
/// ([`SyncEngine`]) and the staged pipeline ([`PipelinedEngine`]) — so
/// benchmarks and differential tests can swap them freely.
pub trait IngestEngine {
    /// Display name of the engine + measured configuration.
    fn name(&self) -> String;

    /// Load `initial`, drive `batches` micro-batches (plus any engine-configured
    /// warm-up) pulled from `stream`, and report. A stream yielding fewer than
    /// `batches` micro-batches is not an error (the report covers what was
    /// measured, matching the synchronous driver); losing batches that *were*
    /// ingested is ([`EngineError::TruncatedRun`]).
    fn run(
        &mut self,
        initial: &SocialNetwork,
        stream: &mut dyn Iterator<Item = ChangeSet>,
        batches: usize,
    ) -> Result<EngineReport, EngineError>;
}

/// The synchronous engine: the classic [`StreamDriver`] loop over any
/// [`Solution`], wrapped behind [`IngestEngine`]. One batch at a time —
/// coalesce, apply, merge — with a full barrier between batches.
pub struct SyncEngine {
    driver: StreamDriver,
    solution: Box<dyn Solution>,
    /// Armed by [`SyncEngine::serve_views`]; consumed by the next run.
    serving: Option<(ViewBuilder, ViewPublisher)>,
}

impl SyncEngine {
    /// Wrap `solution` behind the engine interface, driven by `driver`.
    pub fn new(driver: StreamDriver, solution: Box<dyn Solution>) -> Self {
        SyncEngine {
            driver,
            solution,
            serving: None,
        }
    }

    /// Arm view publication for the **next** run and return a reader on the
    /// publication chain. The run publishes one [`crate::serve::QueryView`]
    /// per applied batch (epoch 1 = the initial evaluation, +1 per batch,
    /// warm-up included); the returned reader starts at the epoch-0 genesis
    /// view and can be cloned into any number of concurrent reader threads.
    ///
    /// Consistency: the synchronous engine publishes the view for batch `t`
    /// before pulling batch `t + 1` from the stream, so a reader that calls
    /// [`ViewReader::latest`] after the run observed every batch —
    /// freshness lag 0 and read-your-writes per batch (`DESIGN.md` §8, tested
    /// by `tests/serve.rs::sync_engine_publishes_every_batch_in_order`).
    pub fn serve_views(&mut self) -> ViewReader {
        let builder = ViewBuilder::new(self.solution.query());
        let (publisher, reader) = view_channel(builder.genesis());
        self.serving = Some((builder, publisher));
        reader
    }
}

/// [`RunObserver`] adapter: folds each applied batch into a [`ViewBuilder`]
/// and publishes the frozen view — the synchronous engine's write side of the
/// serve path.
struct ServeObserver {
    builder: ViewBuilder,
    publisher: ViewPublisher,
}

impl crate::stream::RunObserver for ServeObserver {
    fn loaded(&mut self, initial: &SocialNetwork, result: &str, solution: &dyn Solution) {
        self.builder.observe_initial(initial);
        let snapshot = solution.candidate_snapshot().unwrap_or_default();
        self.publisher
            .publish(self.builder.build(None, &snapshot, result));
    }

    fn applied(&mut self, seq: u64, changes: &ChangeSet, result: &str, solution: &dyn Solution) {
        self.builder.observe_batch(changes);
        let snapshot = solution.candidate_snapshot().unwrap_or_default();
        self.publisher
            .publish(self.builder.build(Some(seq), &snapshot, result));
    }
}

impl IngestEngine for SyncEngine {
    fn name(&self) -> String {
        self.solution.name()
    }

    fn run(
        &mut self,
        initial: &SocialNetwork,
        stream: &mut dyn Iterator<Item = ChangeSet>,
        batches: usize,
    ) -> Result<EngineReport, EngineError> {
        let (report, results) = match self.serving.take() {
            Some((builder, publisher)) => {
                let mut observer = ServeObserver { builder, publisher };
                self.driver.run_with_observer(
                    self.solution.as_mut(),
                    initial,
                    stream,
                    batches,
                    &mut observer,
                )
            }
            None => self
                .driver
                .run_with_results(self.solution.as_mut(), initial, stream, batches),
        };
        Ok(EngineReport {
            stream: report,
            results,
            pipeline: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Pipeline configuration
// ---------------------------------------------------------------------------

/// Deterministic per-stage delay injection, used by the differential tests to
/// force adversarial stage interleavings (a shard finishing batches long after
/// its peers, the router stalling mid-stream) without giving up replayability:
/// the delay of every (stage, shard, seq) triple is a pure function of `seed`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayInjection {
    /// Seed of the delay schedule.
    pub seed: u64,
    /// Maximum delay injected before routing one batch, in microseconds.
    pub max_route_micros: u64,
    /// Maximum delay injected before one shard applies one batch, in
    /// microseconds.
    pub max_apply_micros: u64,
}

impl DelayInjection {
    /// SplitMix64 — a tiny, seedable mix good enough to decorrelate delays.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn delay(&self, stage: u64, shard: u64, seq: u64, max_micros: u64) -> Duration {
        if max_micros == 0 {
            return Duration::ZERO;
        }
        let h = Self::mix(self.seed ^ Self::mix(stage ^ Self::mix(shard ^ seq)));
        Duration::from_micros(h % (max_micros + 1))
    }

    fn sleep_route(&self, seq: u64) {
        let d = self.delay(1, 0, seq, self.max_route_micros);
        if !d.is_zero() {
            thread::sleep(d);
        }
    }

    fn sleep_apply(&self, shard: usize, seq: u64) {
        let d = self.delay(2, shard as u64, seq, self.max_apply_micros);
        if !d.is_zero() {
            thread::sleep(d);
        }
    }
}

/// Configuration of a [`PipelinedEngine`].
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Capacity of every inter-stage queue. Small values couple the stages
    /// tightly (depth 0 would degenerate to a rendezvous barrier); large values
    /// let fast shards run far ahead at the cost of buffered memory and
    /// watermark lag. Values are clamped to ≥ 1.
    pub queue_depth: usize,
    /// Batches fed through the pipeline before measurement starts (their
    /// updates still apply; their latency is excluded).
    pub warmup_batches: usize,
    /// Whether the route stage coalesces batches first (on by default, matching
    /// [`StreamDriver`]).
    pub coalesce: bool,
    /// Optional deterministic per-stage delays (tests only).
    pub delays: Option<DelayInjection>,
    /// Chaos injection (tests and the CI chaos smoke): each `(shard, seq)`
    /// entry makes the apply worker of `shard` exit — without panicking —
    /// right before applying the batch with that sequence number, simulating a
    /// worker dying mid-run. Each entry fires at most once, so two entries for
    /// the same shard kill it twice (the replacement dies too). Without
    /// [`PipelineConfig::recovery`] the engine must then tear down cleanly and
    /// report [`EngineError::TruncatedRun`]; with it, every kill is restored
    /// and the run completes byte-identically to an uncrashed one.
    pub kill_shards: Vec<(usize, u64)>,
    /// When `Some`, the engine runs crash-tolerant: workers checkpoint their
    /// mirror state every [`RecoveryConfig::checkpoint_every`] batches, the
    /// supervisor keeps a bounded changeset log, and dead workers are restored
    /// and replayed instead of failing the run (counters in
    /// [`PipelineStats::recovery`]).
    pub recovery: Option<RecoveryConfig>,
    /// Elastic reshard schedule: each `(at_seq, new_count)` entry drains the
    /// whole worker fleet to a checkpoint right **before** routing batch
    /// `at_seq`, merges the drained per-shard state, re-partitions it over
    /// `new_count` shards ([`Partitioner::resize`]), and resumes the stream
    /// with one fresh worker generation per new shard — with no gap or
    /// duplicate in the merged output (DESIGN.md §5.8). Entries fire in
    /// `at_seq` order; an entry beyond the stream's end never fires.
    /// Resharding runs on the recovery machinery (checkpoints, changeset
    /// logs, catch-up replay), so a non-empty schedule arms
    /// [`PipelineConfig::recovery`] with defaults when the caller left it off.
    ///
    /// [`Partitioner::resize`]: datagen::partition::Partitioner::resize
    pub reshards: Vec<(u64, usize)>,
    /// When `Some`, checkpoints are published through a
    /// [`FileCheckpointStore`] rooted at this directory instead of the
    /// in-process store: snapshots survive the process at the cost of file
    /// I/O on the checkpoint cadence. The directory is created as needed;
    /// snapshot files a previous run left behind are cleared at start (a run
    /// recovers only from its own checkpoints). An unusable directory
    /// degrades to the in-process store with a warning rather than failing
    /// the run.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            queue_depth: 4,
            warmup_batches: 0,
            coalesce: true,
            delays: None,
            kill_shards: Vec::new(),
            recovery: None,
            reshards: Vec::new(),
            checkpoint_dir: None,
        }
    }
}

/// Pipeline-internal statistics of one [`PipelinedEngine::run`], surfaced by
/// `stream_throughput --pipeline`.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Configured capacity of every inter-stage queue.
    pub queue_depth: usize,
    /// Number of shard apply workers at the **end** of the run (an elastic
    /// reshard changes the count mid-stream; see [`PipelineStats::reshards`]).
    pub shards: usize,
    /// Sends that found the ingest → route queue full (the stream out-paced
    /// routing and blocked).
    pub ingest_backpressure: u64,
    /// Sends that found a route → shard queue full (routing out-paced at least
    /// one apply worker and blocked).
    pub route_backpressure: u64,
    /// Sends that found the shard → merge queue full (an apply worker out-paced
    /// the merger and blocked).
    pub apply_backpressure: u64,
    /// Maximum, over all merged batches, of how many batches the
    /// furthest-ahead shard had already completed beyond the batch being
    /// merged — how out-of-order the shards actually ran.
    pub max_watermark_lag: u64,
    /// Per-shard apply time in seconds, indexed `[shard][batch]` over **all**
    /// batches including warm-up (mirrors
    /// [`crate::shard::ShardedSolution::per_shard_latencies`]). Under an
    /// elastic reshard the lanes are ragged: a shard id that stops existing
    /// keeps its (frozen) history, one that starts existing mid-stream has a
    /// shorter lane.
    pub per_shard_apply_latencies: Vec<Vec<f64>>,
    /// `(posts, comments)` owned by each shard at the end of the run.
    pub shard_sizes: Vec<(usize, usize)>,
    /// Routing statistics accumulated by the route stage.
    pub router: ShardRouterStats,
    /// Crash/restore counters — `Some` exactly when the recovery machinery
    /// ran ([`PipelineConfig::recovery`] set, or armed implicitly by a
    /// [`PipelineConfig::reshards`] schedule).
    pub recovery: Option<RecoveryStats>,
    /// One entry per executed elastic reshard, in stream order.
    pub reshards: Vec<ReshardStats>,
}

/// One elastic reshard executed by [`PipelinedEngine::run`] (see
/// [`PipelineConfig::reshards`]): the cost of the three barrier phases plus
/// how much ownership actually moved.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReshardStats {
    /// The barrier sequence number: batches `< at_seq` ran under the old
    /// topology, batches `>= at_seq` under the new one.
    pub at_seq: u64,
    /// Shard count before the barrier.
    pub from_shards: usize,
    /// Shard count after the barrier.
    pub to_shards: usize,
    /// Draining every worker generation to a checkpoint at exactly `at_seq`
    /// (queue close + final checkpoints + catch-up replay of crashed
    /// generations), in seconds.
    pub drain_secs: f64,
    /// Merging the drained checkpoints, re-partitioning under the resized
    /// policy, rebuilding the per-shard evaluators, and publishing the new
    /// topology's checkpoints, in seconds.
    pub split_secs: f64,
    /// Spawning the new worker generations, in seconds.
    pub respawn_secs: f64,
    /// Comments whose owning shard changed across the barrier.
    pub moved_comments: u64,
}

// ---------------------------------------------------------------------------
// Channel payloads
// ---------------------------------------------------------------------------

struct IngestItem {
    seq: u64,
    enqueued: Instant,
    batch: ChangeSet,
}

enum RoutedItem {
    /// One shard's slice of a coalesced micro-batch.
    Batch {
        seq: u64,
        enqueued: Instant,
        ops: ChangeSet,
    },
    /// Reshard drain barrier: publish a checkpoint at the current
    /// `applied_through` (unless the cadence just did), then keep draining to
    /// the close. Sent right before the supervisor drops the route queues, so
    /// a cleanly-draining generation lands its state at exactly the barrier
    /// sequence; a generation that dies first is caught up by the supervisor
    /// instead.
    Checkpoint,
}

struct ApplyOutcome {
    seq: u64,
    enqueued: Instant,
    /// Snapshot of the shard's top-k candidates *as of this batch* — the merger
    /// must not read live evaluator state, which may already be batches ahead.
    candidates: Vec<RankedEntry>,
    had_removals: bool,
    apply_secs: f64,
}

/// What flows into the watermark merge: per-shard apply outcomes, plus the
/// sequenced topology-control item an elastic reshard injects. Topology is a
/// *sequenced* property of the outcome stream — the supervisor sends
/// [`MergeItem::Reshard`] only after every old-generation outcome is already
/// in this queue, so the merge never sees an outcome under the wrong lane
/// count.
enum MergeItem {
    Outcome(usize, ApplyOutcome),
    Reshard {
        /// Every batch `< at` was merged under the old topology when this
        /// item is processed (the barrier drained the fleet through `at`).
        at: u64,
        /// The new lane count.
        shards: usize,
    },
}

/// The one terminal status message every worker generation sends before it
/// goes away — the supervisor's crash detection and end-of-stream sweep both
/// count on exactly one of these per spawned generation.
#[derive(Clone, Debug)]
struct WorkerExit {
    shard: usize,
    generation: u64,
    /// `true` when the generation drained its queue to a clean close; `false`
    /// when it died (kill injection or a panicking evaluator).
    completed: bool,
    /// The kill-injection seq that fired, so the supervisor retires that entry
    /// (a caught panic reports `None`).
    kill_seq: Option<u64>,
    /// Restore latency (snapshot decode + rebuild + log replay) when this
    /// generation was a replacement that finished catching up.
    restore_secs: Option<f64>,
    sizes: (usize, usize),
    blocked: u64,
    checkpoints: u64,
    checkpoint_bytes: u64,
    replayed: u64,
}

/// Send preferring the non-blocking path, counting the times the queue was full
/// (the stage blocked — backpressure). Returns `false` when the receiver is
/// disconnected: the downstream stage died, the item is lost, and the sending
/// stage must stop producing — swallowing the disconnect here is what used to
/// turn a dead shard worker into a silently truncated "successful" report.
#[must_use]
fn send_counting<T>(tx: &SyncSender<T>, item: T, blocked: &mut u64) -> bool {
    // lint: allow(raw-send) — this is the counted helper itself
    match tx.try_send(item) {
        Ok(()) => true,
        Err(TrySendError::Full(item)) => {
            *blocked += 1;
            tx.send(item).is_ok() // lint: allow(raw-send) — counted helper: blocking retry after the Full arm counted the stall
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// The serve-path state the merge stage owns when view publication is armed:
/// the view builder, the single publisher, and the side channel the route
/// stage feeds each coalesced batch through (the builder needs the raw
/// friendship operations, which apply outcomes do not carry).
struct ServeMergeState {
    builder: ViewBuilder,
    publisher: ViewPublisher,
    changes_rx: Receiver<(u64, ChangeSet)>,
}

impl ServeMergeState {
    /// Publish the view for merged batch `t`.
    ///
    /// Availability argument: the route stage sends `(t, batch)` on the side
    /// channel *before* routing batch `t`'s per-shard ops, and the merge only
    /// reaches `t` after every shard delivered `t`'s outcome — so the batch
    /// is already buffered when this runs and the `recv` returns immediately
    /// (buffered items survive sender disconnect). `Err` means the route
    /// stage died before sending this batch, which the merge-before-send
    /// ordering rules out except during teardown; skipping publication there
    /// (staleness, never corruption) is the intended failure mode.
    fn publish(
        &mut self,
        t: u64,
        candidates: Vec<RankedEntry>,
        merger: &ShardMerger,
        result: &str,
    ) {
        if let Ok((seq, batch)) = self.changes_rx.recv() {
            if seq != t {
                return; // protocol drift — serve stale rather than wrong
            }
            self.builder.observe_batch(&batch);
            let snapshot = CandidateSnapshot {
                top: merger.current().to_vec(),
                candidates,
            };
            self.publisher
                .publish(self.builder.build(Some(t), &snapshot, result));
        }
    }
}

/// Everything the merge stage accumulates, returned when its input closes.
struct MergeOutput {
    /// Merged result per batch, indexed by seq (warm-up included).
    results: Vec<String>,
    /// Ingest-enqueue instant per batch.
    enqueued: Vec<Instant>,
    /// Merge-completion instant per batch.
    completed: Vec<Instant>,
    max_watermark_lag: u64,
    per_shard_apply: Vec<Vec<f64>>,
}

/// Everything the supervisor (route stage) accumulates, returned when the
/// stream ends and every worker generation has reported.
struct RouteOutcome {
    /// Router counters summed across every topology the run went through (an
    /// elastic reshard replaces the router; its counters are folded in here
    /// before the replacement).
    router_stats: ShardRouterStats,
    applied_operations: usize,
    route_backpressure: u64,
    apply_backpressure: u64,
    shard_sizes: Vec<(usize, usize)>,
    /// Shard count at the end of the run.
    final_shards: usize,
    recovery: Option<RecoveryStats>,
    reshards: Vec<ReshardStats>,
}

/// Fold `from` into `into` — how router counters survive the router being
/// replaced at a reshard barrier.
fn accumulate_router_stats(into: &mut ShardRouterStats, from: ShardRouterStats) {
    into.routed_operations += from.routed_operations;
    into.broadcast_deliveries += from.broadcast_deliveries;
    into.friendship_deliveries += from.friendship_deliveries;
    into.imported_boundary_edges += from.imported_boundary_edges;
}

// ---------------------------------------------------------------------------
// Shard apply workers
// ---------------------------------------------------------------------------

/// Context a worker generation shares with the supervisor: the factory that
/// rebuilds evaluators on restore, the checkpoint plumbing, and the channels
/// every generation reports through. Owned (`Arc`/clones) rather than
/// borrowed so worker threads are plain `'static` spawns the sync facade can
/// schedule.
#[derive(Clone)]
struct WorkerShared {
    factory: Arc<dyn ShardFactory>,
    delays: Option<DelayInjection>,
    /// `Some` (clamped ≥ 1) exactly when recovery is enabled.
    checkpoint_every: Option<u64>,
    /// The checkpoint backend — in-process by default,
    /// [`FileCheckpointStore`] under [`PipelineConfig::checkpoint_dir`].
    store: Option<Arc<dyn CheckpointStorage>>,
    out_tx: SyncSender<MergeItem>,
    status_tx: Sender<WorkerExit>,
}

/// How a worker generation starts: generation 0 inherits the evaluator built
/// at load; replacements restore a checkpoint snapshot and replay a backlog.
enum WorkerSeed {
    Fresh {
        evaluator: Box<dyn ShardEvaluator>,
        mirror: Option<SocialNetwork>,
        /// The sequence number this generation starts at: 0 for the load-time
        /// fleet, the barrier sequence for a post-reshard fleet (the
        /// checkpoint cadence is absolute, so any start works).
        applied_through: u64,
    },
    Restored {
        snapshot: Vec<u8>,
        backlog: Vec<LogEntry>,
        /// When the supervisor detected the crash — the restore-latency clock.
        started: Instant,
    },
}

enum Step {
    Delivered,
    Killed(u64),
    MergerGone,
}

struct Worker {
    shard: usize,
    generation: u64,
    shared: WorkerShared,
    /// Kill-injection seqs still pending for this shard when the generation
    /// was spawned (already-fired entries are retired by the supervisor).
    kills: Vec<u64>,
    evaluator: Box<dyn ShardEvaluator>,
    /// The shard's replayable sub-network — maintained only under recovery,
    /// where it is what checkpoints serialize.
    mirror: Option<SocialNetwork>,
    applied_through: u64,
    blocked: u64,
    checkpoints: u64,
    checkpoint_bytes: u64,
    replayed: u64,
}

impl Worker {
    /// Apply one changeset — kill check, evaluate, mirror, checkpoint,
    /// deliver. The one code path both live batches and log replay go
    /// through, which is what makes replayed outcomes byte-identical to the
    /// originals.
    fn step(&mut self, seq: u64, enqueued: Instant, ops: &ChangeSet, replaying: bool) -> Step {
        if self.kills.contains(&seq) {
            return Step::Killed(seq);
        }
        if !replaying {
            if let Some(d) = &self.shared.delays {
                d.sleep_apply(self.shard, seq);
            }
        }
        let start = Instant::now();
        let had_removals = self.evaluator.apply(ops);
        let apply_secs = start.elapsed().as_secs_f64();
        if let Some(mirror) = &mut self.mirror {
            apply_changeset(mirror, ops);
        }
        self.applied_through = seq + 1;
        if replaying {
            self.replayed += 1;
        }
        if let Some(every) = self.shared.checkpoint_every {
            if self.applied_through.is_multiple_of(every) {
                self.publish_checkpoint();
            }
        }
        let delivered = send_counting(
            &self.shared.out_tx,
            MergeItem::Outcome(
                self.shard,
                ApplyOutcome {
                    seq,
                    enqueued,
                    candidates: self.evaluator.candidates().to_vec(),
                    had_removals,
                    apply_secs,
                },
            ),
            &mut self.blocked,
        );
        if delivered {
            Step::Delivered
        } else {
            Step::MergerGone
        }
    }

    /// Publish a checkpoint of the mirror at the current `applied_through` —
    /// the cadence boundary in [`Worker::step`], the drain barrier on a
    /// [`RoutedItem::Checkpoint`] sentinel.
    fn publish_checkpoint(&mut self) {
        let Some(store) = &self.shared.store else {
            return;
        };
        let mirror = self.mirror.as_ref().expect("recovery maintains a mirror"); // lint: allow(panic) — the store is only Some when recovery built the mirror at spawn
        let bytes = ShardCheckpoint::encode_parts(
            self.applied_through,
            mirror,
            self.evaluator.candidates(),
        );
        self.checkpoints += 1;
        self.checkpoint_bytes += bytes.len() as u64;
        store.publish(self.shard, self.applied_through, bytes);
    }

    /// `(completed, kill_seq, restore_secs)` of one generation's whole life:
    /// replay the backlog, then drain the route queue to close.
    fn work(
        &mut self,
        backlog: Vec<LogEntry>,
        rx: Receiver<RoutedItem>,
        restore_started: Option<Instant>,
    ) -> (bool, Option<u64>, Option<f64>) {
        // every restored generation reports a restore duration — even one that
        // dies again mid-replay — so `restores` deterministically equals
        // `crashes` no matter where in the replay window the next kill lands
        let elapsed = |started: Option<Instant>| started.map(|t| t.elapsed().as_secs_f64());
        // `test-bug-midreplay-undercount` reverts the PR 6 fix above: a kill
        // landing during backlog replay reports no restore duration, so the
        // model-check regression schedule can prove the checker catches the
        // resulting `restores < crashes` undercount.
        let mid_replay_elapsed = |started: Option<Instant>| {
            if cfg!(feature = "test-bug-midreplay-undercount") {
                None
            } else {
                elapsed(started)
            }
        };
        for entry in backlog {
            match self.step(entry.seq, entry.enqueued, &entry.ops, true) {
                Step::Delivered => {}
                Step::Killed(k) => return (false, Some(k), mid_replay_elapsed(restore_started)),
                Step::MergerGone => return (false, None, mid_replay_elapsed(restore_started)),
            }
        }
        let restore_secs = elapsed(restore_started);
        for item in rx {
            match item {
                RoutedItem::Batch { seq, enqueued, ops } => {
                    match self.step(seq, enqueued, &ops, false) {
                        Step::Delivered => {}
                        Step::Killed(k) => return (false, Some(k), restore_secs),
                        Step::MergerGone => return (false, None, restore_secs),
                    }
                }
                RoutedItem::Checkpoint => {
                    // Drain barrier: land the state at exactly the barrier
                    // sequence. A cadence boundary already published it.
                    let on_boundary = self
                        .shared
                        .checkpoint_every
                        .is_some_and(|every| self.applied_through.is_multiple_of(every));
                    if !on_boundary {
                        self.publish_checkpoint();
                    }
                }
            }
        }
        (true, None, restore_secs)
    }

    fn run(mut self, backlog: Vec<LogEntry>, rx: Receiver<RoutedItem>, started: Option<Instant>) {
        // A panicking evaluator is a crash like any other: contain it here so
        // the generation still reports its terminal status, and discard the
        // (possibly inconsistent) state wholesale — recovery rebuilds from the
        // checkpoint, never from the wreck.
        let result = catch_unwind(AssertUnwindSafe(|| self.work(backlog, rx, started)));
        let (completed, kill_seq, restore_secs, sizes) = match result {
            Ok((completed, kill_seq, restore_secs)) => (
                completed,
                kill_seq,
                restore_secs,
                self.evaluator.owned_sizes(),
            ),
            Err(_) => (false, None, None, (0, 0)),
        };
        // lint: allow(raw-send) — status channel is unbounded; if the supervisor is gone the exit status is moot
        let _ = self.shared.status_tx.send(WorkerExit {
            shard: self.shard,
            generation: self.generation,
            completed,
            kill_seq,
            restore_secs,
            sizes,
            blocked: self.blocked,
            checkpoints: self.checkpoints,
            checkpoint_bytes: self.checkpoint_bytes,
            replayed: self.replayed,
        });
    }
}

/// Spawn one worker generation. A [`WorkerSeed::Restored`] seed decodes and
/// rebuilds on the worker thread, so the supervisor keeps routing the other
/// shards while the replacement catches up. Returns the handle; the
/// supervisor joins every generation after its terminal status arrives.
fn spawn_worker(
    shared: WorkerShared,
    shard: usize,
    generation: u64,
    kills: Vec<u64>,
    seed: WorkerSeed,
    rx: Receiver<RoutedItem>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let factory = Arc::clone(&shared.factory);
        let (worker, backlog, started) = match seed {
            WorkerSeed::Fresh {
                evaluator,
                mirror,
                applied_through,
            } => (
                Worker {
                    shard,
                    generation,
                    shared,
                    kills,
                    evaluator,
                    mirror,
                    applied_through,
                    blocked: 0,
                    checkpoints: 0,
                    checkpoint_bytes: 0,
                    replayed: 0,
                },
                Vec::new(),
                None,
            ),
            WorkerSeed::Restored {
                snapshot,
                backlog,
                started,
            } => {
                let ckpt = ShardCheckpoint::decode(&snapshot)
                    .expect("the in-process checkpoint store only holds snapshots it encoded"); // lint: allow(panic) — the in-process store only returns snapshots it encoded; corruption is a bug, not input
                let evaluator = factory.build(&ckpt.network);
                debug_assert_eq!(
                    evaluator.candidates(),
                    &ckpt.candidates[..], // lint: allow(index) — full-range slice, cannot panic
                    "a rebuild from the restored mirror must reproduce the checkpointed candidates"
                );
                let applied_through = ckpt.applied_through;
                (
                    Worker {
                        shard,
                        generation,
                        shared,
                        kills,
                        evaluator,
                        mirror: Some(ckpt.network),
                        applied_through,
                        blocked: 0,
                        checkpoints: 0,
                        checkpoint_bytes: 0,
                        replayed: 0,
                    },
                    backlog,
                    Some(started),
                )
            }
        };
        worker.run(backlog, rx, started);
    })
}

/// Fold one terminal worker status into the supervisor's aggregates.
fn absorb_exit(
    exit: WorkerExit,
    agg: &mut RecoveryStats,
    apply_backpressure: &mut u64,
    remaining_kills: &mut [Vec<u64>],
    latest_exit: &mut [Option<WorkerExit>],
) {
    *apply_backpressure += exit.blocked;
    agg.checkpoints += exit.checkpoints;
    agg.checkpoint_bytes += exit.checkpoint_bytes;
    agg.replayed_batches += exit.replayed;
    if let Some(secs) = exit.restore_secs {
        agg.restores += 1;
        if secs > agg.max_restore_secs {
            agg.max_restore_secs = secs;
        }
    }
    if !exit.completed {
        agg.crashes += 1;
        if let Some(k) = exit.kill_seq {
            // lint: allow(index) — exit.shard was assigned by spawn_worker from 0..shards
            if let Some(at) = remaining_kills[exit.shard].iter().position(|&x| x == k) {
                remaining_kills[exit.shard].remove(at); // lint: allow(index) — exit.shard < shards; `at` was just found by position()
            }
        }
    }
    let shard = exit.shard;
    latest_exit[shard] = Some(exit); // lint: allow(index) — exit.shard < shards as above
}

// ---------------------------------------------------------------------------
// Worker fleet supervision
// ---------------------------------------------------------------------------

/// The supervisor's view of the live worker fleet: one route queue and one
/// current generation per shard, plus the exit/restore accounting that spans
/// generations. Crash recovery (kill → respawn in place) and elastic
/// resharding (drain the whole fleet → merge/split the checkpointed state →
/// respawn under a new topology) are both *generation transitions* over this
/// one structure, which is what keeps their checkpoint, replay, and
/// merge-dedup behavior identical.
struct WorkerFleet {
    shared: WorkerShared,
    depth: usize,
    /// Current shard count — changes only at a reshard barrier.
    shards: usize,
    txs: Vec<SyncSender<RoutedItem>>,
    /// Generation currently owning each shard. Generation numbers are global
    /// and never reused across topology changes ([`WorkerFleet::next_gen`]),
    /// so a stale exit can never be mistaken for the current generation of a
    /// recycled shard id.
    current_gen: Vec<u64>,
    next_gen: u64,
    /// Generations ever spawned / terminal statuses absorbed.
    generations: usize,
    exits_seen: usize,
    latest_exit: Vec<Option<WorkerExit>>,
    remaining_kills: Vec<Vec<u64>>,
    /// Kill injections scheduled on shard ids outside the current topology;
    /// they re-arm if a later reshard brings the id back.
    parked_kills: Vec<(usize, u64)>,
    logs: Vec<ChangesetLog>,
    sizes: Vec<(usize, usize)>,
    handles: Vec<thread::JoinHandle<()>>,
    agg: RecoveryStats,
    apply_backpressure: u64,
}

impl WorkerFleet {
    fn new(
        shared: WorkerShared,
        depth: usize,
        shards: usize,
        kill_shards: &[(usize, u64)],
        agg: RecoveryStats,
    ) -> Self {
        let mut remaining_kills: Vec<Vec<u64>> = vec![Vec::new(); shards];
        let mut parked_kills = Vec::new();
        for &(shard, seq) in kill_shards {
            if shard < shards {
                remaining_kills[shard].push(seq); // lint: allow(index) — guarded by shard < shards
            } else {
                parked_kills.push((shard, seq));
            }
        }
        WorkerFleet {
            shared,
            depth,
            shards,
            txs: Vec::with_capacity(shards),
            current_gen: vec![0; shards],
            next_gen: 0,
            generations: 0,
            exits_seen: 0,
            latest_exit: vec![None; shards],
            remaining_kills,
            parked_kills,
            logs: (0..shards).map(|_| ChangesetLog::default()).collect(),
            sizes: vec![(0, 0); shards],
            handles: Vec::new(),
            agg,
            apply_backpressure: 0,
        }
    }

    /// Spawn the next generation for `shard`: create its route queue, assign
    /// the globally-unique generation number, and move the seed in.
    fn spawn(&mut self, shard: usize, seed: WorkerSeed) {
        let (tx, rx) = sync_channel::<RoutedItem>(self.depth);
        if shard == self.txs.len() {
            self.txs.push(tx);
        } else {
            self.txs[shard] = tx; // lint: allow(index) — callers spawn over 0..shards in order or replace a live shard
        }
        let generation = self.next_gen;
        self.next_gen += 1;
        self.current_gen[shard] = generation; // lint: allow(index) — shard < shards as above
        self.generations += 1;
        self.handles.push(spawn_worker(
            self.shared.clone(),
            shard,
            generation,
            self.remaining_kills[shard].clone(), // lint: allow(index) — shard < shards as above
            seed,
            rx,
        ));
    }

    /// Fold one terminal worker status into the fleet's accounting.
    fn absorb(&mut self, exit: WorkerExit) {
        self.exits_seen += 1;
        absorb_exit(
            exit,
            &mut self.agg,
            &mut self.apply_backpressure,
            &mut self.remaining_kills,
            &mut self.latest_exit,
        );
    }

    /// Block until the current generation of `shard` has reported its
    /// terminal status, absorbing any other shards' exits that arrive first.
    /// When two shards die close together, the detection loop of the first
    /// may already have absorbed this generation's exit — blocking for it
    /// again would wait forever.
    /// `test-bug-absorbed-exit` reverts that PR 6 fix: the supervisor blocks
    /// for an exit another detection loop already absorbed, and the
    /// model-check regression schedule proves that deadlocks.
    fn await_generation(&mut self, shard: usize, status_rx: &Receiver<WorkerExit>) {
        let already_absorbed = if cfg!(feature = "test-bug-absorbed-exit") {
            false
        } else {
            self.latest_exit[shard] // lint: allow(index) — shard < shards: callers pass a live shard id
                .as_ref()
                // lint: allow(index) — shard < shards as above
                .is_some_and(|exit| exit.generation == self.current_gen[shard])
        };
        if already_absorbed {
            return;
        }
        loop {
            let exit = status_rx
                .recv()
                .expect("every worker generation reports an exit"); // lint: allow(panic) — workers send their exit on every path, panic included (catch_unwind)
            let from = (exit.shard, exit.generation);
            self.absorb(exit);
            // lint: allow(index) — shard < shards as above
            if from == (shard, self.current_gen[shard]) {
                break;
            }
        }
    }

    /// Close every route queue, absorb every outstanding terminal status, and
    /// join the worker threads. After this the fleet is empty; the caller
    /// respawns (reshard barrier) or aggregates (end of stream).
    fn drain(&mut self, status_rx: &Receiver<WorkerExit>) {
        self.txs.clear(); // dropping the senders closes the queues
        while self.exits_seen < self.generations {
            let exit = status_rx
                .recv()
                .expect("every worker generation reports an exit"); // lint: allow(panic) — workers send their exit on every path, panic included (catch_unwind)
            self.absorb(exit);
        }
        // Every generation has reported, so the worker threads are draining
        // their last drops; join them before the caller moves on (a
        // generation can only panic out of its thread during a model-check
        // teardown, which aborts the supervisor at its next sync op anyway).
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Replay `shard` forward from its latest checkpoint **on the supervisor
    /// thread**: rebuild the evaluator, re-apply the logged entries below
    /// `through` (re-delivering their outcomes — the merger deduplicates
    /// whatever the dead generation already delivered), and count the
    /// restore. A still-pending kill inside the replay window fires here too:
    /// another crash, another restore, and the attempt starts over from the
    /// checkpoint — which keeps `restores == crashes` no matter where the
    /// kill lands. With `final_at` set (a reshard barrier), a closing
    /// checkpoint is published at exactly that sequence.
    fn catch_up(
        &mut self,
        shard: usize,
        through: u64,
        final_at: Option<u64>,
        router: &mut ShardRouter,
    ) {
        let store = self.shared.store.clone().expect("recovery implies a store"); // lint: allow(panic) — callers reach catch-up only when recovery is configured
        let every = self
            .shared
            .checkpoint_every
            .expect("recovery implies a checkpoint cadence"); // lint: allow(panic) — recovery always carries a checkpoint cadence
        'attempt: loop {
            let started = Instant::now();
            let (at, snapshot) = store
                .load(shard)
                .expect("initial checkpoints are published at load"); // lint: allow(panic) — load publishes an initial checkpoint for every shard before workers start
            let ckpt = ShardCheckpoint::decode(&snapshot)
                .expect("the checkpoint store only serves snapshots it encoded"); // lint: allow(panic) — the store only serves snapshots that passed verification
            let mut evaluator = self.shared.factory.build(&ckpt.network);
            let mut mirror = ckpt.network;
            let mut applied_through = ckpt.applied_through;
            if through > 0 {
                let entries: Vec<LogEntry> = self.logs[shard] // lint: allow(index) — shard < shards: callers pass a live shard id
                    .replay_range(at, through - 1)
                    .cloned()
                    .collect();
                for entry in entries {
                    // lint: allow(index) — shard < shards as above
                    let pending = &self.remaining_kills[shard];
                    if let Some(pos) = pending.iter().position(|&k| k == entry.seq) {
                        self.remaining_kills[shard].remove(pos); // lint: allow(index) — shard < shards; pos was just found by position()
                        self.agg.crashes += 1;
                        self.agg.restores += 1;
                        let secs = started.elapsed().as_secs_f64();
                        if secs > self.agg.max_restore_secs {
                            self.agg.max_restore_secs = secs;
                        }
                        continue 'attempt;
                    }
                    let start = Instant::now();
                    let had_removals = evaluator.apply(&entry.ops);
                    let apply_secs = start.elapsed().as_secs_f64();
                    apply_changeset(&mut mirror, &entry.ops);
                    applied_through = entry.seq + 1;
                    self.agg.replayed_batches += 1;
                    if applied_through.is_multiple_of(every) {
                        let bytes = ShardCheckpoint::encode_parts(
                            applied_through,
                            &mirror,
                            evaluator.candidates(),
                        );
                        self.agg.checkpoints += 1;
                        self.agg.checkpoint_bytes += bytes.len() as u64;
                        store.publish(shard, applied_through, bytes);
                    }
                    let delivered = send_counting(
                        &self.shared.out_tx,
                        MergeItem::Outcome(
                            shard,
                            ApplyOutcome {
                                seq: entry.seq,
                                enqueued: entry.enqueued,
                                candidates: evaluator.candidates().to_vec(),
                                had_removals,
                                apply_secs,
                            },
                        ),
                        &mut self.apply_backpressure,
                    );
                    if !delivered {
                        break; // merger gone — the run fails anyway
                    }
                }
            }
            if let Some(final_at) = final_at {
                debug_assert_eq!(
                    applied_through, final_at,
                    "a reshard catch-up must land exactly on the barrier"
                );
                if !applied_through.is_multiple_of(every) {
                    let bytes = ShardCheckpoint::encode_parts(
                        applied_through,
                        &mirror,
                        evaluator.candidates(),
                    );
                    self.agg.checkpoints += 1;
                    self.agg.checkpoint_bytes += bytes.len() as u64;
                    store.publish(shard, applied_through, bytes);
                }
            }
            self.agg.restores += 1;
            let secs = started.elapsed().as_secs_f64();
            if secs > self.agg.max_restore_secs {
                self.agg.max_restore_secs = secs;
            }
            router.record_restore(shard, shard);
            self.sizes[shard] = evaluator.owned_sizes(); // lint: allow(index) — shard < shards as above
            break;
        }
    }

    /// Reset the per-shard state for a new topology of `new_count` shards.
    /// The route queues must already be drained. Changeset logs start fresh
    /// (the new topology's checkpoints sit at the barrier, so nothing older
    /// is replayable), and kill injections are re-filed against the new
    /// shard-id range.
    fn adopt_topology(&mut self, new_count: usize) {
        debug_assert!(self.txs.is_empty(), "adopting a topology over a live fleet");
        let mut parked = std::mem::take(&mut self.parked_kills);
        for (shard, kills) in self.remaining_kills.iter_mut().enumerate() {
            if shard >= new_count {
                parked.extend(kills.drain(..).map(|seq| (shard, seq)));
            }
        }
        self.remaining_kills.resize_with(new_count, Vec::new);
        for (shard, seq) in parked {
            if shard < new_count {
                self.remaining_kills[shard].push(seq); // lint: allow(index) — guarded by shard < new_count
            } else {
                self.parked_kills.push((shard, seq));
            }
        }
        self.shards = new_count;
        self.txs = Vec::with_capacity(new_count);
        self.current_gen = vec![0; new_count];
        self.latest_exit = vec![None; new_count];
        self.logs = (0..new_count).map(|_| ChangesetLog::default()).collect();
        self.sizes = vec![(0, 0); new_count];
    }

    /// Execute one reshard barrier right before routing batch `at`: drain the
    /// fleet to a checkpoint at exactly `at`, merge and re-partition the
    /// checkpointed state over `new_count` shards, publish the new topology's
    /// checkpoints, tell the merge stage to resize its lanes, and respawn one
    /// fresh generation per new shard. Returns the replacement router and the
    /// barrier's cost accounting. The whole protocol and its correctness
    /// argument live in DESIGN.md §5.8.
    fn reshard(
        &mut self,
        at: u64,
        new_count: usize,
        router: ShardRouter,
        status_rx: &Receiver<WorkerExit>,
    ) -> (ShardRouter, ReshardStats) {
        let mut router = router;
        let from_shards = self.shards;
        // Phase 1 — drain. The checkpoint sentinel makes every cleanly
        // draining generation land its state at exactly `at`; a generation
        // that dies inside the drain window is caught up on this thread.
        let drain_start = Instant::now();
        let mut drain_blocked = 0u64;
        for tx in &self.txs {
            // a dead worker just means the sentinel is undeliverable — the
            // catch-up below brings that shard to the barrier instead
            let _ = send_counting(tx, RoutedItem::Checkpoint, &mut drain_blocked);
        }
        self.drain(status_rx);
        for shard in 0..from_shards {
            let crashed = self.latest_exit[shard] // lint: allow(index) — shard enumerates 0..from_shards
                .take()
                .map(|exit| !exit.completed)
                .expect("every shard spawned at least one generation"); // lint: allow(panic) — every shard spawns a generation before a barrier can fire
            if crashed {
                self.catch_up(shard, at, Some(at), &mut router);
            }
        }
        let drain_secs = drain_start.elapsed().as_secs_f64();

        // Phase 2 — merge, re-partition, rebuild. The per-shard mirrors
        // under-approximate the friendship graph (an edge whose endpoints
        // were never co-present on any shard lives only in the router's
        // global adjacency), so the union is re-stamped with the live edge
        // set before splitting (see ShardCheckpoint::merge).
        let split_start = Instant::now();
        let store = self
            .shared
            .store
            .clone()
            .expect("resharding implies a store"); // lint: allow(panic) — a reshard schedule arms recovery, which builds the store
        let drained: Vec<ShardCheckpoint> = (0..from_shards)
            .map(|shard| {
                let (ckpt_at, snapshot) = store
                    .load(shard)
                    .expect("the drain published a checkpoint for every shard"); // lint: allow(panic) — the drain above landed every shard at the barrier
                debug_assert_eq!(
                    ckpt_at, at,
                    "shard {shard} drained to {ckpt_at}, barrier is {at}"
                );
                let decoded = ShardCheckpoint::decode(&snapshot)
                    .expect("the store only serves snapshots it encoded"); // lint: allow(panic) — the store verifies checksums before serving
                decoded
            })
            .collect();
        let mut union = ShardCheckpoint::merge(drained);
        union.network.friendships = router.live_friendships();
        let partitioner = router.partitioner().resize(new_count);
        let parts = union.split(partitioner.as_ref(), new_count);
        let new_router = ShardRouter::with_partitioner(&union.network, partitioner);
        let moved_comments = union
            .network
            .comments
            .iter()
            .filter(|c| router.shard_of_comment(c.id) != new_router.shard_of_comment(c.id))
            .count() as u64;
        // Rebuild the evaluators and re-stamp the candidate lists before
        // publishing: split routes candidates to their new owners but cannot
        // widen a list the donor had cut at k — the rebuilt evaluator's own
        // list is the exact one (see ShardCheckpoint::split).
        let seeds: Vec<(Box<dyn ShardEvaluator>, SocialNetwork)> = parts
            .into_iter()
            .map(|part| {
                let evaluator = self.shared.factory.build(&part.network);
                (evaluator, part.network)
            })
            .collect();
        store.resize(new_count);
        for (shard, (evaluator, mirror)) in seeds.iter().enumerate() {
            let bytes = ShardCheckpoint::encode_parts(at, mirror, evaluator.candidates());
            self.agg.checkpoints += 1;
            self.agg.checkpoint_bytes += bytes.len() as u64;
            store.publish(shard, at, bytes);
        }
        let split_secs = split_start.elapsed().as_secs_f64();

        // Phase 3 — adopt the topology and respawn. The control item is
        // sequenced: every pre-barrier outcome is already in the merge queue
        // (all old generations exited before this send), and the new
        // generations cannot produce an outcome until the supervisor routes
        // batch `at` after this returns.
        let respawn_start = Instant::now();
        self.adopt_topology(new_count);
        let _ = send_counting(
            &self.shared.out_tx,
            MergeItem::Reshard {
                at,
                shards: new_count,
            },
            &mut self.apply_backpressure,
        );
        for (shard, (evaluator, mirror)) in seeds.into_iter().enumerate() {
            self.spawn(
                shard,
                WorkerSeed::Fresh {
                    evaluator,
                    mirror: Some(mirror),
                    applied_through: at,
                },
            );
        }
        let respawn_secs = respawn_start.elapsed().as_secs_f64();
        (
            new_router,
            ReshardStats {
                at_seq: at,
                from_shards,
                to_shards: new_count,
                drain_secs,
                split_secs,
                respawn_secs,
                moved_comments,
            },
        )
    }
}

// ---------------------------------------------------------------------------
// The pipelined engine
// ---------------------------------------------------------------------------

/// The staged ingestion engine described in the [module documentation](self):
/// ingest → coalesce/route → N per-shard apply workers → watermark merge, all
/// long-lived threads over bounded queues. Construct with any [`ShardFactory`];
/// each call to [`IngestEngine::run`] builds a fresh router and fresh per-shard
/// evaluators, so one engine value can measure many runs.
pub struct PipelinedEngine {
    factory: Arc<dyn ShardFactory>,
    shards: usize,
    /// The pristine partition policy, cloned into every run's router.
    partitioner: Box<dyn Partitioner>,
    config: PipelineConfig,
    /// Armed by [`PipelinedEngine::serve_views`]; consumed by the next run.
    serving: Option<(ViewBuilder, ViewPublisher)>,
}

impl PipelinedEngine {
    /// Create a pipelined engine over `shards` shards of `factory`'s evaluators
    /// with the default modulo partition policy. `shards == 0` is treated as 1.
    pub fn new(factory: Box<dyn ShardFactory>, shards: usize, config: PipelineConfig) -> Self {
        Self::with_partitioner(factory, Box::new(ModuloPartitioner::new(shards)), config)
    }

    /// Create a pipelined engine with an injected partition policy; the shard
    /// count is the policy's.
    pub fn with_partitioner(
        factory: Box<dyn ShardFactory>,
        partitioner: Box<dyn Partitioner>,
        config: PipelineConfig,
    ) -> Self {
        let shards = partitioner.shard_count();
        PipelinedEngine {
            factory: Arc::from(factory),
            shards,
            partitioner,
            config,
            serving: None,
        }
    }

    /// Convenience constructor for the GraphBLAS backends.
    pub fn graphblas(
        query: crate::model::Query,
        backend: crate::shard::ShardBackend,
        shards: usize,
        config: PipelineConfig,
    ) -> Self {
        Self::new(
            Box::new(crate::shard::GraphBlasShardFactory::new(query, backend)),
            shards,
            config,
        )
    }

    /// The configured number of shard apply workers.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Arm view publication for the **next** run and return a reader on the
    /// publication chain. The merge stage publishes one
    /// [`crate::serve::QueryView`] right after merging each batch (epoch 1 =
    /// the initial evaluation, published before the stages spawn; +1 per
    /// merged batch, warm-up included); the reader starts at the epoch-0
    /// genesis view and can be cloned into any number of reader threads that
    /// run concurrently with the pipeline.
    ///
    /// Consistency: publication trails the apply path by the queue depths
    /// (bounded staleness, not read-your-writes mid-run), but epochs observed
    /// through one reader never decrease, and after the run the latest view
    /// reflects the final batch — `DESIGN.md` §8, tested by
    /// `tests/serve.rs::pipelined_engine_final_view_matches_final_result` and
    /// the `serve` model-check schedules.
    pub fn serve_views(&mut self) -> ViewReader {
        let mut builder = ViewBuilder::new(self.factory.query());
        // Views advertise the topology they were built under; the merge stage
        // re-stamps the builder when a reshard barrier changes it mid-stream.
        builder.set_shards(self.shards);
        let (publisher, reader) = view_channel(builder.genesis());
        self.serving = Some((builder, publisher));
        reader
    }

    /// The merge stage: consume `(shard, outcome)` pairs off the one shared
    /// outcome queue strictly in batch order — batch `t` is merged only once
    /// **all** shards delivered `t` (their watermark passed `t`) — folding
    /// each batch's candidate union through [`ShardMerger`]. Outcomes arriving
    /// early (a shard running ahead) are buffered; the distance the furthest
    /// shard ran ahead is recorded as watermark lag. Recovery replays
    /// re-deliver outcomes the dead generation already delivered; within a
    /// shard, generations deliver in sequence order, so "not the next expected
    /// seq" identifies a duplicate — and deterministic replay makes the
    /// duplicate byte-identical to the accepted original, which is why
    /// dropping it preserves per-batch byte-identity.
    /// When serving is armed, `serve` carries the view builder/publisher plus
    /// the side channel the route stage feeds each coalesced batch through
    /// (so the builder can track friendship components); the merge publishes
    /// one view per merged batch.
    fn merge_stage(
        mut merger: ShardMerger,
        rx: Receiver<MergeItem>,
        shards: usize,
        mut serve: Option<ServeMergeState>,
    ) -> (MergeOutput, ShardMerger) {
        let mut buffers: Vec<VecDeque<ApplyOutcome>> =
            (0..shards).map(|_| VecDeque::new()).collect();
        // Per shard: the next sequence number to accept. Buffers hold exactly
        // the accepted-but-unmerged range `[t, delivered[s])`.
        let mut delivered: Vec<u64> = vec![0; shards];
        let mut t = 0u64;
        let mut out = MergeOutput {
            results: Vec::new(),
            enqueued: Vec::new(),
            completed: Vec::new(),
            max_watermark_lag: 0,
            per_shard_apply: vec![Vec::new(); shards],
        };
        for item in rx {
            let (shard, outcome) = match item {
                MergeItem::Outcome(shard, outcome) => (shard, outcome),
                MergeItem::Reshard {
                    at,
                    shards: new_shards,
                } => {
                    // The control item is sequenced behind every old-topology
                    // outcome, so the merge has caught up to the barrier: all
                    // lanes are drained and the next batch to merge is `at`.
                    debug_assert!(
                        buffers.iter().all(VecDeque::is_empty),
                        "reshard control arrived with buffered outcomes"
                    );
                    debug_assert_eq!(t, at, "merge reached {t} but the barrier is {at}");
                    buffers = (0..new_shards).map(|_| VecDeque::new()).collect();
                    delivered = vec![at; new_shards];
                    // Latency lanes: a grown topology appends fresh (shorter)
                    // lanes; a shrunk one freezes the removed shards' history.
                    if new_shards > out.per_shard_apply.len() {
                        out.per_shard_apply.resize_with(new_shards, Vec::new);
                    }
                    if let Some(state) = serve.as_mut() {
                        // Views published from here on note the new topology
                        // (the epoch chain itself continues uninterrupted).
                        state.builder.set_shards(new_shards);
                    }
                    continue;
                }
            };
            // lint: allow(index) — outcome.shard is validated against shards at the recv site
            if outcome.seq != delivered[shard] {
                debug_assert!(
                    outcome.seq < delivered[shard], // lint: allow(index) — outcome.shard < shards as above
                    "shard {shard} delivered seq {} but {} was expected — a gap, not a replay",
                    outcome.seq,
                    delivered[shard] // lint: allow(index) — outcome.shard < shards as above
                );
                continue; // replayed duplicate of an already-accepted outcome
            }
            delivered[shard] += 1; // lint: allow(index) — outcome.shard < shards as above
            buffers[shard].push_back(outcome); // lint: allow(index) — outcome.shard < shards as above
            while buffers.iter().all(|buffer| !buffer.is_empty()) {
                for &d in &delivered {
                    out.max_watermark_lag = out.max_watermark_lag.max(d - 1 - t);
                }
                let outcomes: Vec<ApplyOutcome> = buffers
                    .iter_mut()
                    .map(|buffer| buffer.pop_front().expect("buffer non-empty")) // lint: allow(panic) — the merge fires only when every per-shard buffer is non-empty (checked above)
                    .collect();
                debug_assert!(
                    outcomes.iter().all(|o| o.seq == t),
                    "merge fell out of batch order at {t}"
                );
                let any_removals = outcomes.iter().any(|o| o.had_removals);
                let union: Vec<RankedEntry> = outcomes
                    .iter()
                    .flat_map(|o| o.candidates.iter().copied())
                    .collect();
                // `merge` consumes the union; the serve path needs it again as
                // the view's candidate pool, so keep a copy only when serving.
                let candidates = serve.as_ref().map(|_| union.clone());
                let result = merger.merge(union, any_removals);
                if let (Some(state), Some(candidates)) = (serve.as_mut(), candidates) {
                    state.publish(t, candidates, &merger, &result);
                }
                for (shard, outcome) in outcomes.iter().enumerate() {
                    out.per_shard_apply[shard].push(outcome.apply_secs); // lint: allow(index) — shard enumerates the per-shard vectors built over 0..shards
                }
                out.results.push(result);
                out.enqueued.push(outcomes[0].enqueued); // lint: allow(index) — outcomes has one entry per shard and shards >= 1
                out.completed.push(Instant::now());
                t += 1;
            }
        }
        (out, merger)
    }
}

impl IngestEngine for PipelinedEngine {
    fn name(&self) -> String {
        let mut parts = vec![format!("{} shards", self.shards)];
        if self.partitioner.name() != "mod" {
            parts.push(self.partitioner.name().to_string());
        }
        if self.config.recovery.is_some() {
            parts.push("recover".to_string());
        }
        if !self.config.reshards.is_empty() {
            parts.push("reshard".to_string());
        }
        parts.push("pipelined".to_string());
        format!("{} ({})", self.factory.name(), parts.join(", "))
    }

    fn run(
        &mut self,
        initial: &SocialNetwork,
        stream: &mut dyn Iterator<Item = ChangeSet>,
        batches: usize,
    ) -> Result<EngineReport, EngineError> {
        let shards = self.shards;
        let depth = self.config.queue_depth.max(1);
        let warmup = self.config.warmup_batches;
        let total = warmup + batches;
        let coalesce_on = self.config.coalesce;
        let delays = self.config.delays.clone();
        let kill_shards = self.config.kill_shards.clone();
        // The reshard plan fires in at_seq order; a zero target count is
        // clamped like a zero shard count at construction.
        let reshards: Vec<(u64, usize)> = {
            let mut plan: Vec<(u64, usize)> = self
                .config
                .reshards
                .iter()
                .map(|&(at, n)| (at, n.max(1)))
                .collect();
            plan.sort_by_key(|&(at, _)| at);
            plan
        };
        // Resharding runs on the recovery machinery (checkpoints, changeset
        // logs, catch-up replay), so a reshard schedule arms it with defaults
        // when the caller left it off.
        let recovery = if reshards.is_empty() {
            self.config.recovery.clone()
        } else {
            self.config
                .recovery
                .clone()
                .or_else(|| Some(RecoveryConfig::default()))
        };
        let factory = Arc::clone(&self.factory);

        // Load phase: the exact function the synchronous driver runs —
        // partition, build the per-shard evaluators (rayon-parallel), seed the
        // merge state — so the two engines cannot drift apart before batch 0.
        // The per-shard sub-networks become the workers' recovery mirrors.
        let load_start = Instant::now();
        let (router, parts, evaluators, merger, initial_result) =
            load_shards_parts(factory.as_ref(), initial, self.partitioner.clone());
        let load_secs = load_start.elapsed().as_secs_f64();

        // Recovery plumbing: the shared snapshot store, seeded with one
        // initial checkpoint per shard (`applied_through = 0`) so a worker
        // dying before its first boundary still has something to restore from.
        // With a checkpoint directory configured the store is file-backed;
        // the run clears snapshots a previous run left behind (it recovers
        // only from its own checkpoints, and the old files may describe a
        // different topology).
        let store: Option<Arc<dyn CheckpointStorage>> =
            recovery
                .as_ref()
                .map(|_| match &self.config.checkpoint_dir {
                    Some(dir) => match FileCheckpointStore::open(dir) {
                        Ok(files) => {
                            let files: Arc<dyn CheckpointStorage> = Arc::new(files);
                            files.resize(0);
                            files.resize(shards);
                            files
                        }
                        Err(err) => {
                            eprintln!(
                                "checkpoint dir {} unusable ({err}); using the in-process store",
                                dir.display()
                            );
                            Arc::new(CheckpointStore::new(shards))
                        }
                    },
                    None => Arc::new(CheckpointStore::new(shards)),
                });
        let mut agg = RecoveryStats::default();
        if let Some(store) = &store {
            for (shard, (part, evaluator)) in parts.iter().zip(&evaluators).enumerate() {
                let bytes = ShardCheckpoint::encode_parts(0, part, evaluator.candidates());
                agg.checkpoints += 1;
                agg.checkpoint_bytes += bytes.len() as u64;
                store.publish(shard, 0, bytes);
            }
        }
        let mirrors: Vec<Option<SocialNetwork>> = if recovery.is_some() {
            parts.into_iter().map(Some).collect()
        } else {
            vec![None; shards]
        };

        // Serving: publish the epoch-1 initial view on this thread (the
        // evaluators and seeded merger are still here), then hand the
        // builder/publisher to the merge stage together with the route →
        // merge batch side channel. Both exist only when serving is armed,
        // so unarmed runs execute the exact synchronization-op sequence the
        // model-check schedules were built against.
        let serve_armed = self.serving.take().map(|(mut builder, mut publisher)| {
            builder.observe_initial(initial);
            let snapshot = CandidateSnapshot {
                top: merger.current().to_vec(),
                candidates: evaluators
                    .iter()
                    .flat_map(|e| e.candidates().iter().copied())
                    .collect(),
            };
            publisher.publish(builder.build(None, &snapshot, &initial_result));
            (builder, publisher)
        });
        let (batch_tx, serve_state) = match serve_armed {
            Some((builder, publisher)) => {
                // Unbounded by design: the sender never blocks (no new
                // deadlock edge in the stage graph), and the buffered depth
                // is bounded by the pipeline's own queue depths.
                let (tx, rx) = channel::<(u64, ChangeSet)>();
                (
                    Some(tx),
                    Some(ServeMergeState {
                        builder,
                        publisher,
                        changes_rx: rx,
                    }),
                )
            }
            None => (None, None),
        };

        // Stage plumbing. Bounded queues per edge — except the workers → merge
        // edge, which is one *shared* queue: per-shard outcome queues would
        // wedge a replaying supervisor against a merger blocked on a shard
        // that is mid-restore, and a dead worker must not close the merger's
        // input while a replacement is still coming.
        let (ingest_tx, ingest_rx) = sync_channel::<IngestItem>(depth);
        let (out_tx, out_rx) = sync_channel::<MergeItem>(depth * shards);
        let (status_tx, status_rx) = channel::<WorkerExit>();

        let mut total_operations = 0usize;
        let mut ingest_backpressure = 0u64;
        let mut ingested = 0usize;

        let (merged, route_out) = {
            // Stage 4: watermark merge.
            let merge_handle =
                thread::spawn(move || Self::merge_stage(merger, out_rx, shards, serve_state));

            // Stage 2 + supervisor: coalesce + route, spawn (and under
            // recovery, restore) the apply workers, collect their terminal
            // statuses.
            let route_handle = thread::spawn(move || {
                let mut router = router;
                let mut applied = 0usize;
                let mut route_blocked = 0u64;
                let mut router_stats = ShardRouterStats::default();
                let mut reshard_events: Vec<ReshardStats> = Vec::new();
                let mut reshard_plan: VecDeque<(u64, usize)> = reshards.into();

                let shared = WorkerShared {
                    factory,
                    delays: delays.clone(),
                    checkpoint_every: recovery.as_ref().map(|r| r.checkpoint_every.max(1)),
                    store: store.clone(),
                    out_tx: out_tx.clone(),
                    status_tx: status_tx.clone(),
                };
                let mut fleet = WorkerFleet::new(shared, depth, shards, &kill_shards, agg);

                // Stage 3: one apply worker per shard; the evaluator (and
                // under recovery, its mirror sub-network) moves in.
                for (shard, (evaluator, mirror)) in evaluators.into_iter().zip(mirrors).enumerate()
                {
                    fleet.spawn(
                        shard,
                        WorkerSeed::Fresh {
                            evaluator,
                            mirror,
                            applied_through: 0,
                        },
                    );
                }

                let mut total_routed = 0u64;
                'route: for IngestItem {
                    seq,
                    enqueued,
                    batch,
                } in ingest_rx
                {
                    // Reshard barriers fire right before their batch is
                    // routed: batches < at ran under the old topology,
                    // batches >= at run under the new one. Back-to-back
                    // entries at the same seq each drain the fleet they find.
                    while reshard_plan.front().is_some_and(|&(at, _)| at == seq) {
                        let (at, new_count) =
                            reshard_plan.pop_front().expect("front() was just Some"); // lint: allow(panic) — guarded by the loop condition
                        accumulate_router_stats(&mut router_stats, router.stats());
                        let (new_router, event) = fleet.reshard(at, new_count, router, &status_rx);
                        router = new_router;
                        reshard_events.push(event);
                    }
                    if let Some(d) = &delays {
                        d.sleep_route(seq);
                    }
                    let batch = if coalesce_on { coalesce(&batch) } else { batch };
                    if let Some(tx) = &batch_tx {
                        // Before routing, so the serve side channel is always
                        // ahead of the merge (see ServeMergeState::publish).
                        // lint: allow(raw-send) — unbounded serve side channel: never blocks, and a disconnected merge stage just ends publication
                        let _ = tx.send((seq, batch.clone()));
                    }
                    if seq >= warmup as u64 {
                        applied += batch.operations.len();
                    }
                    // Every shard receives an item for every seq (possibly
                    // empty), which is what keeps the merger's watermark a
                    // plain per-shard counter.
                    let routed = router.route(&batch);
                    if fleet.shared.store.is_some() {
                        // Log before sending, so the entry exists even when
                        // the send discovers a dead worker; prune below the
                        // latest published checkpoint to keep the log bounded
                        // by the checkpoint interval plus queue lag.
                        for (shard, ops) in routed.iter().enumerate() {
                            // lint: allow(index) — shard enumerates the routed slices over 0..shards
                            fleet.logs[shard].append(LogEntry {
                                seq,
                                enqueued,
                                ops: ops.clone(),
                            });
                            let published = fleet
                                .shared
                                .store
                                .as_ref()
                                .and_then(|store| store.applied_through(shard));
                            if let Some(at) = published {
                                fleet.logs[shard].prune_through(at); // lint: allow(index) — shard < shards as above
                            }
                        }
                    }
                    for (shard, ops) in routed.into_iter().enumerate() {
                        if send_counting(
                            &fleet.txs[shard], // lint: allow(index) — shard < shards as above
                            RoutedItem::Batch { seq, enqueued, ops },
                            &mut route_blocked,
                        ) {
                            continue;
                        }
                        // The send failed: this shard's current generation
                        // died (its queue disconnected).
                        if recovery.is_none() {
                            break 'route; // tear down → TruncatedRun
                        }
                        let started = Instant::now();
                        // Its terminal status is guaranteed (sent before the
                        // queue closed, or momentarily after — recv blocks);
                        // the fleet absorbs any other shard's exits that
                        // arrive first.
                        fleet.await_generation(shard, &status_rx);
                        let (at, snapshot) = fleet
                            .shared
                            .store
                            .as_ref()
                            .expect("recovery implies a store") // lint: allow(panic) — this branch is only reached when recovery is configured
                            .load(shard)
                            .expect("initial checkpoints are published at load"); // lint: allow(panic) — load publishes an initial checkpoint for every shard before workers start
                                                                                  // Replay everything since the snapshot through the
                                                                                  // current batch (inclusive — its send just failed, so
                                                                                  // the backlog is the only copy the shard will get).
                        let backlog: Vec<LogEntry> =
                            fleet.logs[shard].replay_range(at, seq).cloned().collect(); // lint: allow(index) — shard < shards as above
                        router.record_restore(shard, shard);
                        fleet.spawn(
                            shard,
                            WorkerSeed::Restored {
                                snapshot,
                                backlog,
                                started,
                            },
                        );
                    }
                    total_routed = seq + 1;
                }

                // End of stream: close every route queue, absorb every
                // generation's terminal status, join the workers.
                fleet.drain(&status_rx);
                // Catch-up recovery: a generation that died with no subsequent
                // batch to trip a failed send (killed at the final batch, or
                // while replaying at stream end) is only visible here. Replay
                // the log on this thread; the merger deduplicates whatever the
                // dead generation already delivered.
                for shard in 0..fleet.shards {
                    let exit = fleet.latest_exit[shard] // lint: allow(index) — shard enumerates 0..shards
                        .take()
                        .expect("every shard spawned at least one generation"); // lint: allow(panic) — every shard spawns a generation before this sweep runs
                    if exit.completed || recovery.is_none() {
                        fleet.sizes[shard] = exit.sizes; // lint: allow(index) — shard enumerates 0..shards
                        continue;
                    }
                    fleet.catch_up(shard, total_routed, None, &mut router);
                }
                accumulate_router_stats(&mut router_stats, router.stats());
                let final_shards = fleet.shards;
                let shard_sizes = std::mem::take(&mut fleet.sizes);
                let apply_backpressure = fleet.apply_backpressure;
                let agg = fleet.agg;
                drop(fleet); // with it the last out_tx clone — the merge stage drains and returns
                drop(out_tx);
                RouteOutcome {
                    router_stats,
                    applied_operations: applied,
                    route_backpressure: route_blocked,
                    apply_backpressure,
                    shard_sizes,
                    final_shards,
                    recovery: recovery.map(|_| agg),
                    reshards: reshard_events,
                }
            });

            // Stage 1 (this thread): ingest — pull, stamp seq, enqueue.
            for item in sequenced(stream.take(total)) {
                if item.seq >= warmup as u64 {
                    total_operations += item.batch.operations.len();
                }
                let delivered = send_counting(
                    &ingest_tx,
                    IngestItem {
                        seq: item.seq,
                        enqueued: Instant::now(),
                        batch: item.batch,
                    },
                    &mut ingest_backpressure,
                );
                if !delivered {
                    break; // the route stage died; stop pulling the stream
                }
                ingested += 1;
            }
            drop(ingest_tx); // close the pipe; stages drain and exit in turn

            let route_out = route_handle.join().expect("route stage panicked"); // lint: allow(panic) — a panicked stage must propagate: the run has no meaningful report
            let (merged, _merger) = merge_handle.join().expect("merge stage panicked"); // lint: allow(panic) — a panicked stage must propagate: the run has no meaningful report
            (merged, route_out)
        };

        // A merged count short of the ingested count means a stage died mid-run
        // and dropped batches: refuse to report throughput over a truncated
        // window as if it were the whole run.
        if merged.results.len() != ingested {
            return Err(EngineError::TruncatedRun {
                ingested,
                merged: merged.results.len(),
            });
        }

        // Assemble the report from the merged timeline.
        let measured = merged.results.len().saturating_sub(warmup);
        let results: Vec<String> = merged.results.iter().skip(warmup).cloned().collect();
        let mut latencies: Vec<f64> = (warmup..merged.results.len())
            .map(|i| (merged.completed[i] - merged.enqueued[i]).as_secs_f64()) // lint: allow(index) — i ranges over the measured window, bounds-checked when the window was cut
            .collect();
        // Wall-clock of the measured window: from "warm-up results done" (or
        // the first enqueue when there is no warm-up) to the last merge.
        let elapsed_secs = match (merged.completed.last(), measured) {
            (Some(&end), m) if m > 0 => {
                let start = if warmup > 0 {
                    merged.completed[warmup - 1] // lint: allow(index) — guarded by the warmup > 0 branch and the measured-window check
                } else {
                    merged.enqueued[0] // lint: allow(index) — the enclosing branch established at least one merged batch
                };
                (end - start).as_secs_f64()
            }
            _ => 0.0,
        };
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite")); // lint: allow(panic) — latencies are Duration-derived seconds, never NaN
        let stream_report = StreamReport {
            solution: self.name(),
            batches: measured,
            total_operations,
            applied_operations: route_out.applied_operations,
            elapsed_secs,
            updates_per_sec: if elapsed_secs > 0.0 {
                total_operations as f64 / elapsed_secs
            } else {
                0.0
            },
            p50_latency_secs: percentile(&latencies, 50.0),
            p90_latency_secs: percentile(&latencies, 90.0),
            p99_latency_secs: percentile(&latencies, 99.0),
            max_latency_secs: latencies.last().copied().unwrap_or(0.0),
            load_secs,
            // the stream may end inside the warm-up window: those batches were
            // still applied, so the last *merged* result (not the pre-stream
            // initial one) is the true end state — matching SyncEngine
            final_result: merged.results.last().cloned().unwrap_or(initial_result),
        };
        let stats = PipelineStats {
            queue_depth: depth,
            shards: route_out.final_shards,
            ingest_backpressure,
            route_backpressure: route_out.route_backpressure,
            apply_backpressure: route_out.apply_backpressure,
            max_watermark_lag: merged.max_watermark_lag,
            per_shard_apply_latencies: merged.per_shard_apply,
            shard_sizes: route_out.shard_sizes,
            router: route_out.router_stats,
            recovery: route_out.recovery,
            reshards: route_out.reshards,
        };
        Ok(EngineReport {
            stream: stream_report,
            results,
            pipeline: Some(stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Query;
    use crate::shard::{GraphBlasShardFactory, ShardBackend, ShardedSolution};
    use datagen::stream::{StreamConfig, UpdateStream};
    use datagen::{generate_workload, GeneratorConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn network(seed: u64) -> SocialNetwork {
        generate_workload(&GeneratorConfig::tiny(seed)).initial
    }

    fn batches(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
        UpdateStream::new(
            network,
            StreamConfig {
                seed,
                batch_size: 12,
                deletion_weight: 0.3,
                ..StreamConfig::default()
            },
        )
        .take(count)
        .collect()
    }

    fn run_pipelined(
        network: &SocialNetwork,
        batches: &[ChangeSet],
        shards: usize,
        config: PipelineConfig,
    ) -> EngineReport {
        let mut engine =
            PipelinedEngine::graphblas(Query::Q2, ShardBackend::Incremental, shards, config);
        let mut stream = batches.iter().cloned();
        engine
            .run(network, &mut stream, batches.len())
            .expect("pipeline completed")
    }

    fn recovery_config(checkpoint_every: u64) -> Option<RecoveryConfig> {
        Some(RecoveryConfig { checkpoint_every })
    }

    #[test]
    fn pipelined_results_match_the_sync_engine_per_batch() {
        let network = network(51);
        let batches = batches(&network, 0x51de, 12);
        let mut sync = SyncEngine::new(
            StreamDriver::default(),
            Box::new(ShardedSolution::new(
                Query::Q2,
                ShardBackend::Incremental,
                3,
            )),
        );
        let mut stream = batches.iter().cloned();
        let expected = sync
            .run(&network, &mut stream, batches.len())
            .expect("sync engine never truncates");
        let got = run_pipelined(&network, &batches, 3, PipelineConfig::default());
        assert_eq!(got.results, expected.results);
        assert_eq!(
            got.stream.final_result, expected.stream.final_result,
            "final results diverged"
        );
        assert_eq!(got.stream.batches, batches.len());
        assert_eq!(
            got.stream.total_operations,
            expected.stream.total_operations
        );
        assert_eq!(
            got.stream.applied_operations,
            expected.stream.applied_operations
        );
    }

    #[test]
    fn injected_delays_do_not_change_results() {
        let network = network(53);
        let batches = batches(&network, 0xde1a, 8);
        let plain = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let delayed = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                queue_depth: 2,
                delays: Some(DelayInjection {
                    seed: 7,
                    max_route_micros: 200,
                    max_apply_micros: 800,
                }),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(plain.results, delayed.results);
    }

    #[test]
    fn warmup_batches_are_applied_but_not_measured() {
        let network = network(57);
        let all = batches(&network, 0xaa, 10);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q1,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                warmup_batches: 4,
                ..PipelineConfig::default()
            },
        );
        let mut stream = all.iter().cloned();
        let report = engine
            .run(&network, &mut stream, 6)
            .expect("pipeline completed");
        assert_eq!(report.stream.batches, 6);
        assert_eq!(report.results.len(), 6);
        // end state must equal replaying all 10 batches synchronously
        let mut reference = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 2);
        let mut last = reference.load_and_initial(&network);
        for batch in &all {
            last = reference.update_and_reevaluate(&coalesce(batch));
        }
        assert_eq!(report.stream.final_result, last);
    }

    #[test]
    fn stats_report_the_stage_graph() {
        let network = network(59);
        let batches = batches(&network, 0xbb, 6);
        let report = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                queue_depth: 3,
                ..PipelineConfig::default()
            },
        );
        let stats = report.pipeline.expect("pipelined engines report stats");
        assert_eq!(stats.queue_depth, 3);
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.per_shard_apply_latencies.len(), 2);
        for lane in &stats.per_shard_apply_latencies {
            assert_eq!(lane.len(), batches.len());
        }
        assert_eq!(stats.shard_sizes.len(), 2);
        assert!(stats.router.routed_operations > 0);
        assert!(stats.recovery.is_none(), "recovery was not enabled");
        // a shard can run ahead by at most the items parked in its route queue
        // (depth), the shared outcome queue (depth × shards), and one in flight
        assert!(
            stats.max_watermark_lag <= 3 * 3 + 1,
            "watermark lag {} not bounded by the queue depths",
            stats.max_watermark_lag
        );
    }

    #[test]
    fn short_streams_end_the_pipeline_cleanly() {
        let network = network(61);
        let batches = batches(&network, 0xcc, 3);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::IncrementalCc,
            2,
            PipelineConfig::default(),
        );
        // ask for more batches than the stream yields: a short stream is not a
        // truncated run — nothing that was ingested got lost
        let mut stream = batches.iter().cloned();
        let report = engine
            .run(&network, &mut stream, 10)
            .expect("short streams are not an error");
        assert_eq!(report.stream.batches, 3);
        assert_eq!(report.results.len(), 3);

        // and the degenerate empty stream
        let mut empty = std::iter::empty();
        let report = engine
            .run(&network, &mut empty, 5)
            .expect("empty streams are not an error");
        assert_eq!(report.stream.batches, 0);
        assert!(report.results.is_empty());
        assert!(!report.stream.final_result.is_empty()); // the initial result
    }

    #[test]
    fn stream_ending_inside_the_warmup_window_still_reports_the_applied_state() {
        // regression: warm-up batches mutate shard state even when the stream
        // ends before measurement starts, so final_result must be the last
        // *merged* result, not the pre-stream initial one
        let network = network(63);
        let all = batches(&network, 0xdd, 2);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                warmup_batches: 4, // more warm-up than the stream yields
                ..PipelineConfig::default()
            },
        );
        let mut stream = all.iter().cloned();
        let report = engine
            .run(&network, &mut stream, 6)
            .expect("pipeline completed");
        assert_eq!(report.stream.batches, 0);
        assert!(report.results.is_empty());
        let mut reference = ShardedSolution::new(Query::Q2, ShardBackend::Incremental, 2);
        let mut last = reference.load_and_initial(&network);
        for batch in &all {
            last = reference.update_and_reevaluate(&coalesce(batch));
        }
        assert_eq!(report.stream.final_result, last);
    }

    #[test]
    fn dead_shard_worker_is_reported_as_a_truncated_run() {
        // regression: a shard worker dying mid-run used to make the merge stage
        // stop early and the engine report success over fewer batches than
        // ingested, because `send_counting` swallowed the disconnect
        let network = network(67);
        let batches = batches(&network, 0xdead, 8);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                kill_shards: vec![(1, 3)], // shard 1 dies before applying batch 3
                ..PipelineConfig::default()
            },
        );
        let mut stream = batches.iter().cloned();
        let err = engine
            .run(&network, &mut stream, batches.len())
            .expect_err("a dead worker must not report success");
        match err {
            EngineError::TruncatedRun { ingested, merged } => {
                assert!(
                    merged < ingested,
                    "merged {merged} must be short of ingested {ingested}"
                );
                assert!(merged <= 3, "shard 1 died before batch 3, merged {merged}");
            }
        }
        // the error renders the counts for operators
        let rendered = err.to_string();
        assert!(rendered.contains("truncated"), "{rendered}");
    }

    #[test]
    fn kill_before_the_first_batch_truncates_to_zero_without_recovery() {
        // chaos-coverage regression: the earliest possible death — the worker
        // exits before applying seq 0, so nothing of that shard ever merges
        let network = network(71);
        let batches = batches(&network, 0x6b, 6);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                kill_shards: vec![(1, 0)],
                ..PipelineConfig::default()
            },
        );
        let mut stream = batches.iter().cloned();
        let err = engine
            .run(&network, &mut stream, batches.len())
            .expect_err("a shard dead from batch 0 must not report success");
        match err {
            EngineError::TruncatedRun { merged, .. } => {
                assert_eq!(merged, 0, "nothing can merge without shard 1");
            }
        }
    }

    #[test]
    fn recovery_restores_a_killed_shard_mid_stream() {
        // the ISSUE 6 acceptance shape: with recovery enabled, the same kill
        // that truncates the run above completes instead — byte-identical to
        // an uncrashed run, with the crash visible only in the counters
        let network = network(67);
        let batches = batches(&network, 0xdead, 8);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                kill_shards: vec![(1, 3)],
                recovery: recovery_config(2),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        assert_eq!(got.stream.final_result, expected.stream.final_result);
        let stats = got.pipeline.expect("pipelined engines report stats");
        let recovery = stats.recovery.expect("recovery was enabled");
        assert_eq!(recovery.crashes, 1);
        assert_eq!(recovery.restores, 1);
        assert!(
            recovery.replayed_batches >= 1,
            "the kill at seq 3 forces a replay, got {recovery:?}"
        );
        assert!(
            recovery.checkpoints >= 2,
            "initial checkpoints are always published, got {recovery:?}"
        );
        assert!(recovery.checkpoint_bytes > 0);
        assert!(recovery.max_restore_secs > 0.0);
    }

    #[test]
    fn recovery_restores_a_shard_killed_before_the_first_batch() {
        // kill at seq 0: the restore comes from the *initial* checkpoint
        // published at load, and the whole stream is replayed
        let network = network(71);
        let batches = batches(&network, 0x6b, 6);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                kill_shards: vec![(1, 0)],
                recovery: recovery_config(4),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        let recovery = got
            .pipeline
            .expect("stats")
            .recovery
            .expect("recovery was enabled");
        assert_eq!(recovery.crashes, 1);
        assert_eq!(recovery.restores, 1);
    }

    #[test]
    fn a_kill_beyond_the_stream_never_fires() {
        // chaos-coverage regression: a kill scheduled after the last watermark
        // is a no-op — the run completes with zero crashes
        let network = network(73);
        let batches = batches(&network, 0xee, 5);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                kill_shards: vec![(0, 1000)],
                recovery: recovery_config(2),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        let recovery = got
            .pipeline
            .expect("stats")
            .recovery
            .expect("recovery was enabled");
        assert_eq!(recovery.crashes, 0);
        assert_eq!(recovery.restores, 0);
        assert_eq!(recovery.replayed_batches, 0);
    }

    #[test]
    fn two_shards_killed_at_the_same_seq_recover_without_deadlock() {
        // regression: when both shards die at the same seq, the detection loop
        // for the first dead shard absorbs the second's exit off the shared
        // status channel — the second detection must notice that instead of
        // blocking forever on an exit that was already consumed
        let network = network(81);
        let batches = batches(&network, 0xdd2, 8);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                kill_shards: vec![(0, 3), (1, 3)],
                recovery: recovery_config(2),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        let recovery = got
            .pipeline
            .expect("stats")
            .recovery
            .expect("recovery was enabled");
        assert_eq!(recovery.crashes, 2, "{recovery:?}");
        assert_eq!(recovery.restores, 2, "{recovery:?}");
    }

    #[test]
    fn recovery_under_delay_injection_stays_byte_identical() {
        // chaos-coverage regression: a kill with DelayInjection active — the
        // restore must stay invisible under adversarial stage interleavings
        let network = network(77);
        let batches = batches(&network, 0xff, 8);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                queue_depth: 2,
                delays: Some(DelayInjection {
                    seed: 11,
                    max_route_micros: 200,
                    max_apply_micros: 800,
                }),
                kill_shards: vec![(0, 4)],
                recovery: recovery_config(3),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        let recovery = got
            .pipeline
            .expect("stats")
            .recovery
            .expect("recovery was enabled");
        assert_eq!(recovery.crashes, 1);
        assert_eq!(recovery.restores, 1);
    }

    /// A [`ShardFactory`] whose evaluators panic exactly once across the whole
    /// run — at one evaluator's `at_apply`-th apply — to prove the panic
    /// containment path, not just the quiet kill injection.
    struct PanicOnceFactory {
        inner: GraphBlasShardFactory,
        fuse: Arc<AtomicBool>,
        at_apply: usize,
    }

    struct PanicOnceEvaluator {
        inner: Box<dyn ShardEvaluator>,
        fuse: Arc<AtomicBool>,
        at_apply: usize,
        applies: usize,
    }

    impl ShardFactory for PanicOnceFactory {
        fn build(&self, part: &SocialNetwork) -> Box<dyn ShardEvaluator> {
            Box::new(PanicOnceEvaluator {
                inner: self.inner.build(part),
                fuse: Arc::clone(&self.fuse),
                at_apply: self.at_apply,
                applies: 0,
            })
        }

        fn query(&self) -> Query {
            self.inner.query()
        }

        fn name(&self) -> String {
            self.inner.name()
        }
    }

    impl ShardEvaluator for PanicOnceEvaluator {
        fn apply(&mut self, changeset: &ChangeSet) -> bool {
            self.applies += 1;
            if self.applies == self.at_apply && self.fuse.swap(false, Ordering::SeqCst) {
                panic!("injected evaluator panic");
            }
            self.inner.apply(changeset)
        }

        fn candidates(&self) -> &[RankedEntry] {
            self.inner.candidates()
        }

        fn owned_sizes(&self) -> (usize, usize) {
            self.inner.owned_sizes()
        }
    }

    #[test]
    fn a_panicking_evaluator_is_contained_and_recovered_like_a_kill() {
        let network = network(79);
        let batches = batches(&network, 0xabc, 8);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let mut engine = PipelinedEngine::new(
            Box::new(PanicOnceFactory {
                inner: GraphBlasShardFactory::new(Query::Q2, ShardBackend::Incremental),
                fuse: Arc::new(AtomicBool::new(true)),
                at_apply: 3,
            }),
            2,
            PipelineConfig {
                recovery: recovery_config(2),
                ..PipelineConfig::default()
            },
        );
        let mut stream = batches.iter().cloned();
        let got = engine
            .run(&network, &mut stream, batches.len())
            .expect("the panic is contained and the shard restored");
        assert_eq!(got.results, expected.results);
        let recovery = got
            .pipeline
            .expect("stats")
            .recovery
            .expect("recovery was enabled");
        assert_eq!(recovery.crashes, 1, "{recovery:?}");
        assert_eq!(recovery.restores, 1, "{recovery:?}");
    }

    #[test]
    fn a_panicking_evaluator_does_not_block_later_restores_of_other_shards() {
        // regression for the checkpoint-store poisoning policy: an evaluator
        // panic on one shard must not poison shared recovery state — later
        // crashes of *other* shards (here: kill injections on both shards,
        // after the panic) still restore and the run completes byte-identical
        let network = network(79);
        let batches = batches(&network, 0xabc, 8);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let mut engine = PipelinedEngine::new(
            Box::new(PanicOnceFactory {
                inner: GraphBlasShardFactory::new(Query::Q2, ShardBackend::Incremental),
                fuse: Arc::new(AtomicBool::new(true)),
                at_apply: 2,
            }),
            2,
            PipelineConfig {
                // whichever shard tripped the panic fuse, the other one is
                // also killed later — its restore exercises the store after
                // the panic
                kill_shards: vec![(0, 6), (1, 6)],
                recovery: recovery_config(2),
                ..PipelineConfig::default()
            },
        );
        let mut stream = batches.iter().cloned();
        let got = engine
            .run(&network, &mut stream, batches.len())
            .expect("every crash after the panic is still restored");
        assert_eq!(got.results, expected.results);
        let recovery = got
            .pipeline
            .expect("stats")
            .recovery
            .expect("recovery was enabled");
        assert_eq!(recovery.crashes, 3, "one panic + two kills: {recovery:?}");
        assert_eq!(recovery.restores, 3, "{recovery:?}");
    }

    #[test]
    fn ring_partitioner_threads_through_the_pipeline() {
        let network = network(69);
        let batches = batches(&network, 0x4177, 10);
        let mut modulo = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::Incremental,
            3,
            PipelineConfig::default(),
        );
        let mut stream = batches.iter().cloned();
        let expected = modulo
            .run(&network, &mut stream, batches.len())
            .expect("pipeline completed");
        let mut ring = PipelinedEngine::with_partitioner(
            Box::new(crate::shard::GraphBlasShardFactory::new(
                Query::Q2,
                ShardBackend::Incremental,
            )),
            Box::new(datagen::partition::RingPartitioner::new(3, 42)),
            PipelineConfig::default(),
        );
        assert_eq!(
            ring.name(),
            "GraphBLAS Sharded Incremental (3 shards, ring, pipelined)"
        );
        let mut stream = batches.iter().cloned();
        let got = ring
            .run(&network, &mut stream, batches.len())
            .expect("pipeline completed");
        // a different placement policy must not change a single output byte
        assert_eq!(got.results, expected.results);
    }

    #[test]
    fn engine_names_identify_the_configuration() {
        let engine = PipelinedEngine::graphblas(
            Query::Q1,
            ShardBackend::Incremental,
            4,
            PipelineConfig::default(),
        );
        assert_eq!(
            engine.name(),
            "GraphBLAS Sharded Incremental (4 shards, pipelined)"
        );
        assert_eq!(engine.shard_count(), 4);
        // recovery-enabled engines say so
        let recovering = PipelinedEngine::graphblas(
            Query::Q1,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                recovery: Some(RecoveryConfig::default()),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(
            recovering.name(),
            "GraphBLAS Sharded Incremental (2 shards, recover, pipelined)"
        );
        // zero shards degrades to one
        assert_eq!(
            PipelinedEngine::graphblas(
                Query::Q1,
                ShardBackend::Batch,
                0,
                PipelineConfig::default()
            )
            .shard_count(),
            1
        );
        // resharding engines say so too
        let resharding = PipelinedEngine::graphblas(
            Query::Q1,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                reshards: vec![(4, 4)],
                ..PipelineConfig::default()
            },
        );
        assert_eq!(
            resharding.name(),
            "GraphBLAS Sharded Incremental (2 shards, reshard, pipelined)"
        );
    }

    #[test]
    fn reshard_grow_mid_stream_stays_byte_identical() {
        // the ISSUE 10 tentpole shape: a live 2 → 4 reshard halfway through
        // the stream changes nothing the caller can observe except the stats
        let network = network(91);
        let batches = batches(&network, 0x2e5a, 10);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                reshards: vec![(5, 4)],
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        assert_eq!(got.stream.final_result, expected.stream.final_result);
        let stats = got.pipeline.expect("pipelined engines report stats");
        assert_eq!(stats.shards, 4, "the run ends under the new topology");
        assert_eq!(stats.shard_sizes.len(), 4);
        assert_eq!(stats.reshards.len(), 1);
        let event = &stats.reshards[0];
        assert_eq!(event.at_seq, 5);
        assert_eq!(event.from_shards, 2);
        assert_eq!(event.to_shards, 4);
        assert!(event.drain_secs >= 0.0 && event.split_secs > 0.0);
        // resharding armed the recovery machinery implicitly
        let recovery = stats.recovery.expect("reshard arms recovery");
        assert_eq!(recovery.crashes, 0);
        assert!(recovery.checkpoints >= 2, "{recovery:?}");
    }

    #[test]
    fn reshard_shrink_and_regrow_stays_byte_identical() {
        // consecutive topology changes: 4 → 2 → 3, each barrier draining the
        // fleet the previous one spawned (generation numbers never reused)
        let network = network(93);
        let batches = batches(&network, 0x5412, 12);
        let expected = run_pipelined(&network, &batches, 4, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            4,
            PipelineConfig {
                reshards: vec![(4, 2), (8, 3)],
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        assert_eq!(got.stream.final_result, expected.stream.final_result);
        let stats = got.pipeline.expect("pipelined engines report stats");
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.reshards.len(), 2);
        assert_eq!(stats.reshards[0].to_shards, 2);
        assert_eq!(stats.reshards[1].from_shards, 2);
        assert_eq!(stats.reshards[1].to_shards, 3);
    }

    #[test]
    fn kill_during_reshard_drain_recovers_and_stays_byte_identical() {
        // a worker killed at the same seq the barrier drains to: the drain
        // absorbs the crash, catch-up replays the shard to the barrier on the
        // supervisor, and the reshard proceeds — restores == crashes holds
        let network = network(95);
        let batches = batches(&network, 0x6b11, 10);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                kill_shards: vec![(1, 4)],
                recovery: recovery_config(2),
                reshards: vec![(4, 3)],
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        assert_eq!(got.stream.final_result, expected.stream.final_result);
        let stats = got.pipeline.expect("pipelined engines report stats");
        let recovery = stats.recovery.expect("recovery was enabled");
        assert_eq!(
            recovery.restores, recovery.crashes,
            "every crash recovered exactly once: {recovery:?}"
        );
        assert_eq!(recovery.crashes, 1, "{recovery:?}");
        assert_eq!(stats.reshards.len(), 1);
    }

    #[test]
    fn kill_after_reshard_lands_on_the_new_topology() {
        // a kill scheduled on shard 2 of a 2-shard run only becomes live once
        // the 2 → 4 reshard brings shard 2 into existence (parked kills)
        let network = network(97);
        let batches = batches(&network, 0xa44e, 10);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                kill_shards: vec![(2, 6)],
                recovery: recovery_config(2),
                reshards: vec![(3, 4)],
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        assert_eq!(got.stream.final_result, expected.stream.final_result);
        let recovery = got
            .pipeline
            .expect("stats")
            .recovery
            .expect("recovery was enabled");
        assert_eq!(recovery.crashes, 1, "{recovery:?}");
        assert_eq!(recovery.restores, 1, "{recovery:?}");
    }

    #[test]
    fn reshard_at_seq_zero_and_past_the_stream() {
        // boundary barriers: at seq 0 the reshard fires before any batch is
        // routed (a plain re-partition of the initial load); one scheduled
        // past the stream never fires and reports nothing
        let network = network(99);
        let batches = batches(&network, 0x0e0e, 6);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                reshards: vec![(0, 3), (1000, 2)],
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        assert_eq!(got.stream.final_result, expected.stream.final_result);
        let stats = got.pipeline.expect("pipelined engines report stats");
        assert_eq!(stats.shards, 3, "only the seq-0 barrier fired");
        assert_eq!(stats.reshards.len(), 1);
        assert_eq!(stats.reshards[0].at_seq, 0);
    }

    #[test]
    fn file_backed_checkpoints_restore_a_killed_shard() {
        // the durable-store satellite: the same kill/recover shape as
        // recovery_restores_a_killed_shard_mid_stream, but snapshots round-trip
        // through FileCheckpointStore instead of the in-process map
        let network = network(67);
        let batches = batches(&network, 0xdead, 8);
        let expected = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let dir = std::env::temp_dir().join(format!(
            "ttc-ckpt-test-{}-{}",
            std::process::id(),
            0x10usize
        ));
        let got = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                kill_shards: vec![(1, 3)],
                recovery: recovery_config(2),
                checkpoint_dir: Some(dir.clone()),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(got.results, expected.results);
        assert_eq!(got.stream.final_result, expected.stream.final_result);
        let recovery = got
            .pipeline
            .expect("stats")
            .recovery
            .expect("recovery was enabled");
        assert_eq!(recovery.crashes, 1);
        assert_eq!(recovery.restores, 1);
        // the directory holds the run's published snapshots
        let snapshots = std::fs::read_dir(&dir)
            .expect("checkpoint dir exists")
            .count();
        assert!(snapshots >= 2, "expected per-shard snapshot files");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
