//! The GraphBLAS representation of the social network: one sparse matrix per edge
//! type, plus the id registries and the timestamps needed for result ordering.
//!
//! Following Sec. II of the paper, edges are stored **per type**, and the rows and
//! columns of each matrix represent the source and target node types of that edge
//! type (so the matrices are rectangular):
//!
//! * `RootPost ∈ B^{|posts| × |comments|}` — comment → root post, stored transposed
//!   (posts in rows) exactly as the paper's Q1 uses it,
//! * `Likes ∈ B^{|comments| × |users|}` — user → comment likes, stored with comments
//!   in rows as in the paper's Q2 figure,
//! * `Friends ∈ B^{|users| × |users|}` — symmetric friendship matrix,
//! * `Commented ∈ B^{|comments| × |comments|}` — comment → parent comment edges (the
//!   submission tree without the post roots).
//!
//! Stored values are `1_u64` so the counting semirings apply directly.

use datagen::{ElementId, SocialNetwork};
use graphblas::ops_traits::First;
use graphblas::{Index, Matrix, Vector};

use crate::model::IdMap;

/// The matrix store for one social network instance.
#[derive(Clone, Debug)]
pub struct SocialGraph {
    /// Post id registry (row space of `root_post`).
    pub posts: IdMap,
    /// Comment id registry (column space of `root_post`, row space of `likes`).
    pub comments: IdMap,
    /// User id registry (column space of `likes`, both spaces of `friends`).
    pub users: IdMap,
    /// `posts × comments` matrix: `root_post[p][c] = 1` iff comment `c`'s root is `p`.
    pub root_post: Matrix<u64>,
    /// `comments × users` matrix: `likes[c][u] = 1` iff user `u` likes comment `c`.
    pub likes: Matrix<u64>,
    /// `users × users` symmetric matrix of friendships.
    pub friends: Matrix<u64>,
    /// `comments × comments` matrix of comment → parent-comment edges.
    pub commented: Matrix<u64>,
    /// Timestamp of each post, indexed by the dense post index.
    pub post_timestamps: Vec<u64>,
    /// Timestamp of each comment, indexed by the dense comment index.
    pub comment_timestamps: Vec<u64>,
}

impl SocialGraph {
    /// Create an empty graph (no nodes, no edges).
    pub fn empty() -> Self {
        SocialGraph {
            posts: IdMap::new(),
            comments: IdMap::new(),
            users: IdMap::new(),
            root_post: Matrix::new(0, 0),
            likes: Matrix::new(0, 0),
            friends: Matrix::new(0, 0),
            commented: Matrix::new(0, 0),
            post_timestamps: Vec::new(),
            comment_timestamps: Vec::new(),
        }
    }

    /// Build the matrix representation of an initial social network.
    pub fn from_network(network: &SocialNetwork) -> Self {
        let mut posts = IdMap::new();
        let mut comments = IdMap::new();
        let mut users = IdMap::new();
        let mut post_timestamps = Vec::with_capacity(network.posts.len());
        let mut comment_timestamps = Vec::with_capacity(network.comments.len());

        for user in &network.users {
            users.get_or_insert(user.id);
        }
        for post in &network.posts {
            posts.get_or_insert(post.id);
            post_timestamps.push(post.timestamp);
        }
        for comment in &network.comments {
            comments.get_or_insert(comment.id);
            comment_timestamps.push(comment.timestamp);
        }

        let np = posts.len();
        let nc = comments.len();
        let nu = users.len();

        let mut root_post_tuples: Vec<(Index, Index, u64)> = Vec::with_capacity(nc);
        let mut commented_tuples: Vec<(Index, Index, u64)> = Vec::new();
        for comment in &network.comments {
            let c = comments.index_of(comment.id).expect("registered above"); // lint: allow(panic) — the comment was interned in the registration pass above
            let p = posts
                .index_of(comment.root_post)
                .expect("rootPost references an existing post"); // lint: allow(panic) — the loader validates rootPost references before building the graph
            root_post_tuples.push((p, c, 1));
            if let Some(parent_c) = comments.index_of(comment.parent) {
                commented_tuples.push((c, parent_c, 1));
            }
        }

        let likes_tuples: Vec<(Index, Index, u64)> = network
            .likes
            .iter()
            .filter_map(|&(user, comment)| {
                match (comments.index_of(comment), users.index_of(user)) {
                    (Some(c), Some(u)) => Some((c, u, 1)),
                    _ => None,
                }
            })
            .collect();

        let mut friends_tuples: Vec<(Index, Index, u64)> =
            Vec::with_capacity(network.friendships.len() * 2);
        for &(a, b) in &network.friendships {
            if let (Some(ia), Some(ib)) = (users.index_of(a), users.index_of(b)) {
                friends_tuples.push((ia, ib, 1));
                friends_tuples.push((ib, ia, 1));
            }
        }

        let mut graph = SocialGraph {
            root_post: Matrix::from_tuples(np, nc, &root_post_tuples, First::new())
                .expect("indices in range by construction"), // lint: allow(panic) — all four matrices were built over the interned index spaces
            likes: Matrix::from_tuples(nc, nu, &likes_tuples, First::new())
                .expect("indices in range by construction"), // lint: allow(panic) — interned index spaces as above
            friends: Matrix::from_tuples(nu, nu, &friends_tuples, First::new())
                .expect("indices in range by construction"), // lint: allow(panic) — interned index spaces as above
            commented: Matrix::from_tuples(nc, nc, &commented_tuples, First::new())
                .expect("indices in range by construction"), // lint: allow(panic) — interned index spaces as above
            posts,
            comments,
            users,
            post_timestamps,
            comment_timestamps,
        };
        // the initial load is the CSR "freeze" moment: build the learned row indexes
        // once here; later changeset mutations simply invalidate them (rebuilding per
        // batch would cost more than the point lookups it saves)
        graph.root_post.freeze_index();
        graph.likes.freeze_index();
        graph.friends.freeze_index();
        graph.commented.freeze_index();
        graph
    }

    /// Number of posts.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }

    /// Number of comments.
    pub fn comment_count(&self) -> usize {
        self.comments.len()
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Per-comment number of incoming likes (`likesCount` in the paper's Alg. 1),
    /// as a sparse vector over the comment index space.
    pub fn likes_count(&self) -> Vector<u64> {
        graphblas::ops::reduce_matrix_rows(&self.likes, graphblas::monoid::stock::plus())
    }

    /// Timestamp used for ordering results of Q1 (posts).
    pub fn post_timestamp(&self, index: Index) -> u64 {
        self.post_timestamps[index]
    }

    /// Timestamp used for ordering results of Q2 (comments).
    pub fn comment_timestamp(&self, index: Index) -> u64 {
        self.comment_timestamps[index]
    }

    /// External id of a post index.
    pub fn post_id(&self, index: Index) -> ElementId {
        self.posts.id_of(index)
    }

    /// External id of a comment index.
    pub fn comment_id(&self, index: Index) -> ElementId {
        self.comments.id_of(index)
    }

    /// Check internal consistency (dimensions of matrices vs registries). Intended for
    /// tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        let np = self.posts.len();
        let nc = self.comments.len();
        let nu = self.users.len();
        if self.root_post.nrows() != np || self.root_post.ncols() != nc {
            return Err(format!(
                "root_post is {}x{}, expected {}x{}",
                self.root_post.nrows(),
                self.root_post.ncols(),
                np,
                nc
            ));
        }
        if self.likes.nrows() != nc || self.likes.ncols() != nu {
            return Err(format!(
                "likes is {}x{}, expected {}x{}",
                self.likes.nrows(),
                self.likes.ncols(),
                nc,
                nu
            ));
        }
        if self.friends.nrows() != nu || self.friends.ncols() != nu {
            return Err(format!(
                "friends is {}x{}, expected {}x{}",
                self.friends.nrows(),
                self.friends.ncols(),
                nu,
                nu
            ));
        }
        if self.commented.nrows() != nc || self.commented.ncols() != nc {
            return Err(format!(
                "commented is {}x{}, expected {}x{}",
                self.commented.nrows(),
                self.commented.ncols(),
                nc,
                nc
            ));
        }
        if self.post_timestamps.len() != np {
            return Err("post_timestamps length mismatch".into());
        }
        if self.comment_timestamps.len() != nc {
            return Err("comment_timestamps length mismatch".into());
        }
        // friendship matrix must be symmetric
        for (a, b, _) in self.friends.iter() {
            if self.friends.get(b, a).is_none() {
                return Err(format!("friends matrix not symmetric at ({a}, {b})"));
            }
        }
        Ok(())
    }
}

/// Build the example graph of Fig. 3a of the paper: two posts, three comments, four
/// users. Used extensively by tests and the quickstart example.
pub fn paper_example_network() -> SocialNetwork {
    use datagen::{Comment, Post, User};
    SocialNetwork {
        users: vec![
            User {
                id: 101,
                name: "u1".into(),
            },
            User {
                id: 102,
                name: "u2".into(),
            },
            User {
                id: 103,
                name: "u3".into(),
            },
            User {
                id: 104,
                name: "u4".into(),
            },
        ],
        posts: vec![
            Post {
                id: 1,
                timestamp: 10,
                author: 101,
            },
            Post {
                id: 2,
                timestamp: 11,
                author: 102,
            },
        ],
        comments: vec![
            // c1 and c2 belong to p1 (c2 replies to c1), c3 belongs to p2
            Comment {
                id: 11,
                timestamp: 20,
                author: 102,
                parent: 1,
                root_post: 1,
            },
            Comment {
                id: 12,
                timestamp: 21,
                author: 103,
                parent: 11,
                root_post: 1,
            },
            Comment {
                id: 13,
                timestamp: 22,
                author: 104,
                parent: 2,
                root_post: 2,
            },
        ],
        // friendships as drawn in Fig. 3a: u1-u2, u2-u3, u3-u4
        friendships: vec![(101, 102), (102, 103), (103, 104)],
        // likes as in Fig. 4b: c1 is liked by u2 and u3; c2 is liked by u1, u3 and u4
        likes: vec![(102, 11), (103, 11), (101, 12), (103, 12), (104, 12)],
    }
}

/// The update of Fig. 3b of the paper: a friends edge u1–u4, a likes edge u2→c2, and a
/// new comment c4 (root p1, parent c1) liked by u4.
pub fn paper_example_changeset() -> datagen::ChangeSet {
    use datagen::{ChangeOperation, Comment};
    datagen::ChangeSet {
        operations: vec![
            ChangeOperation::AddFriendship { a: 101, b: 104 },
            ChangeOperation::AddLike {
                user: 102,
                comment: 12,
            },
            ChangeOperation::AddComment {
                comment: Comment {
                    id: 14,
                    timestamp: 30,
                    author: 101,
                    parent: 11,
                    root_post: 1,
                },
            },
            ChangeOperation::AddLike {
                user: 104,
                comment: 14,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_matrices_with_correct_dimensions() {
        let g = SocialGraph::from_network(&paper_example_network());
        assert_eq!(g.post_count(), 2);
        assert_eq!(g.comment_count(), 3);
        assert_eq!(g.user_count(), 4);
        assert_eq!(g.root_post.nrows(), 2);
        assert_eq!(g.root_post.ncols(), 3);
        assert_eq!(g.likes.nrows(), 3);
        assert_eq!(g.likes.ncols(), 4);
        assert_eq!(g.friends.nrows(), 4);
        g.check_consistency().unwrap();
    }

    #[test]
    fn root_post_edges_match_the_figure() {
        let g = SocialGraph::from_network(&paper_example_network());
        let p1 = g.posts.index_of(1).unwrap();
        let p2 = g.posts.index_of(2).unwrap();
        let c1 = g.comments.index_of(11).unwrap();
        let c2 = g.comments.index_of(12).unwrap();
        let c3 = g.comments.index_of(13).unwrap();
        assert_eq!(g.root_post.get(p1, c1), Some(1));
        assert_eq!(g.root_post.get(p1, c2), Some(1));
        assert_eq!(g.root_post.get(p2, c3), Some(1));
        assert_eq!(g.root_post.nvals(), 3);
    }

    #[test]
    fn likes_count_matches_figure() {
        let g = SocialGraph::from_network(&paper_example_network());
        let counts = g.likes_count();
        let c1 = g.comments.index_of(11).unwrap();
        let c2 = g.comments.index_of(12).unwrap();
        let c3 = g.comments.index_of(13).unwrap();
        assert_eq!(counts.get(c1), Some(2));
        assert_eq!(counts.get(c2), Some(3));
        assert_eq!(counts.get(c3), None); // no likes on c3
    }

    #[test]
    fn friends_matrix_is_symmetric() {
        let g = SocialGraph::from_network(&paper_example_network());
        assert_eq!(g.friends.nvals(), 6); // 3 undirected pairs
        g.check_consistency().unwrap();
    }

    #[test]
    fn commented_edges_link_child_to_parent_comment() {
        let g = SocialGraph::from_network(&paper_example_network());
        let c1 = g.comments.index_of(11).unwrap();
        let c2 = g.comments.index_of(12).unwrap();
        assert_eq!(g.commented.get(c2, c1), Some(1));
        assert_eq!(g.commented.nvals(), 1); // only c2 replies to a comment
    }

    #[test]
    fn empty_graph_is_consistent() {
        let g = SocialGraph::empty();
        g.check_consistency().unwrap();
        assert_eq!(g.post_count(), 0);
        assert_eq!(g.likes_count().nvals(), 0);
    }

    #[test]
    fn timestamps_are_recorded_per_index() {
        let g = SocialGraph::from_network(&paper_example_network());
        let p1 = g.posts.index_of(1).unwrap();
        assert_eq!(g.post_timestamp(p1), 10);
        let c3 = g.comments.index_of(13).unwrap();
        assert_eq!(g.comment_timestamp(c3), 22);
        assert_eq!(g.post_id(p1), 1);
        assert_eq!(g.comment_id(c3), 13);
    }
}
