//! Loading networks and changesets from the benchmark's CSV layout.
//!
//! The original TTC 2018 framework distributes the initial model and the change
//! sequences as pipe-separated CSV files. The `datagen` crate defines that textual
//! format (and can emit it for synthetic workloads); this module parses it and builds
//! the GraphBLAS representation, which is the "load" part of the benchmark's
//! *load and initial evaluation* phase.

use datagen::{ChangeSet, NetworkCsv, SocialNetwork, Workload};

use crate::graph::SocialGraph;

/// Errors raised while loading benchmark inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError(pub String);

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "load error: {}", self.0)
    }
}

impl std::error::Error for LoadError {}

/// Parse an initial network from its CSV rendering and build the matrix
/// representation.
pub fn load_graph_from_csv(csv: &NetworkCsv) -> Result<SocialGraph, LoadError> {
    let network = datagen::network_from_csv(csv).map_err(LoadError)?;
    Ok(SocialGraph::from_network(&network))
}

/// Parse a changeset from its CSV rendering.
pub fn load_changeset_from_csv(text: &str) -> Result<ChangeSet, LoadError> {
    datagen::changeset_from_csv(text).map_err(LoadError)
}

/// Parse a full workload (initial network + changesets) from CSV renderings.
pub fn load_workload_from_csv(
    network: &NetworkCsv,
    changesets: &[String],
) -> Result<Workload, LoadError> {
    let initial: SocialNetwork = datagen::network_from_csv(network).map_err(LoadError)?;
    let mut parsed = Vec::with_capacity(changesets.len());
    for cs in changesets {
        parsed.push(load_changeset_from_csv(cs)?);
    }
    Ok(Workload {
        initial,
        changesets: parsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_network;
    use datagen::GeneratorConfig;

    #[test]
    fn load_graph_roundtrips_through_csv() {
        let network = paper_example_network();
        let csv = datagen::network_to_csv(&network);
        let graph = load_graph_from_csv(&csv).unwrap();
        assert_eq!(graph.post_count(), 2);
        assert_eq!(graph.comment_count(), 3);
        assert_eq!(graph.user_count(), 4);
        graph.check_consistency().unwrap();
    }

    #[test]
    fn load_workload_roundtrips_through_csv() {
        let workload = datagen::generate_workload(&GeneratorConfig::tiny(81));
        let network_csv = datagen::network_to_csv(&workload.initial);
        let changeset_csvs: Vec<String> = workload
            .changesets
            .iter()
            .map(datagen::changeset_to_csv)
            .collect();
        let loaded = load_workload_from_csv(&network_csv, &changeset_csvs).unwrap();
        assert_eq!(loaded, workload);
    }

    #[test]
    fn parse_errors_are_surfaced() {
        let mut csv = datagen::network_to_csv(&paper_example_network());
        csv.posts.push_str("garbage-line\n");
        let err = load_graph_from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("posts"));
        assert!(load_changeset_from_csv("Z|1\n").is_err());
    }
}
