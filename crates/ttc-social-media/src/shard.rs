//! Shard-parallel streaming pipeline: user-id partitioning, boundary-edge
//! friendship replicas, per-shard incremental recompute, and cross-shard top-k
//! merging.
//!
//! The single-shard [`StreamDriver`](crate::stream::StreamDriver) applies one
//! micro-batch at a time through one [`Solution`]; every update serialises on one
//! copy of the query state. This module decomposes that state so a micro-batch
//! fans out over `N` independent shards:
//!
//! * **Partitioning.** The graph is partitioned by *user id* with the canonical
//!   [`datagen::stream::shard_of_user`] function. A post is owned by the shard of
//!   its author; every comment of a discussion tree follows its **root post's**
//!   shard, and likes follow the liked comment. Both queries score exactly one
//!   submission per result entry, and both scores only read edges inside the
//!   submission's discussion tree (Q1) or among the submission's likers (Q2), so
//!   whole-tree ownership makes every score computable on a single shard.
//! * **Boundary-edge replicas.** Friendship edges are the one relation that cuts
//!   across shards: Q2 connects likers of a comment regardless of where those
//!   users' own submissions live. The [`ShardRouter`] therefore maintains, per
//!   shard, the set of users *present* as likers, and replicates a friendship
//!   edge into every shard where **both** endpoints are present. When a user
//!   first likes a comment of a shard, the router backfills ("imports") the
//!   user's live friendships with already-present users, so the shard's friends
//!   sub-matrix always contains every edge among its likers — incremental
//!   connected components stay exact without any shard ever seeing the full
//!   friendship matrix.
//! * **Merging.** Each shard maintains its own top-k candidates with exact global
//!   scores (ownership is a partition, so no score is split across shards). The
//!   global top-k is merged from the union of the per-shard candidate lists with
//!   the same [`TopKTracker`] policy the single-shard evaluators use:
//!   [`TopKTracker::merge_changes`] on monotone (insert-only) batches, a rebuild
//!   from the union when a batch retracted edges. See `DESIGN.md` §"Sharded
//!   streaming pipeline" for the correctness argument.
//!
//! [`ShardedSolution`] implements [`Solution`], so the existing stream driver,
//! differential tests and benchmark binaries drive it unchanged; per-shard
//! latency samples are recorded for the `stream_throughput --shards N` report.
//!
//! The phases are exposed as stage-callable pieces rather than one monolithic
//! apply: [`ShardRouter`] (route), [`ShardEvaluator`] / [`ShardFactory`]
//! (pluggable per-shard apply — GraphBLAS here, the NMF dependency-record
//! baseline in `nmf_baseline::shard`), and [`ShardMerger`] (the cross-shard
//! top-k policy). [`ShardedSolution`] composes them synchronously with a
//! barrier per batch; [`crate::pipeline::PipelinedEngine`] composes the same
//! pieces asynchronously over bounded queues with a watermark merge.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

use datagen::apply_changeset as apply_network_changeset;
use datagen::partition::{ModuloPartitioner, Partitioner};
use datagen::{ChangeOperation, ChangeSet, Comment, ElementId, SocialNetwork};
use rayon::prelude::*;

use crate::graph::SocialGraph;
use crate::model::Query;
use crate::q1::batch::q1_batch_ranked;
use crate::q1::incremental::Q1Incremental;
use crate::q2::batch::q2_batch_ranked;
use crate::q2::incremental::Q2Incremental;
use crate::q2::incremental_cc::Q2IncrementalCc;
use crate::solution::{Solution, TOP_K};
use crate::top_k::{RankedEntry, TopKTracker};
use crate::update::apply_changeset;

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Routing statistics, exposed for the benchmark report and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRouterStats {
    /// Operations routed to exactly one owning shard (posts, comments, likes).
    pub routed_operations: u64,
    /// Per-shard deliveries of broadcast operations (user registrations).
    pub broadcast_deliveries: u64,
    /// Per-shard deliveries of friendship operations via their replica sets.
    pub friendship_deliveries: u64,
    /// Boundary edges backfilled when a user first became present in a shard.
    pub imported_boundary_edges: u64,
}

/// Routes a coalesced micro-batch to per-shard changesets, maintaining the
/// boundary-edge replica sets described in the [module documentation](self).
///
/// Ownership is decided in two layers: the injected [`Partitioner`] policy
/// answers "which shard should own **new** work keyed on this user", while the
/// sticky `post_shard`/`comment_shard` maps answer "which shard **does** own
/// this existing submission". Existing trees therefore never move implicitly
/// when the policy changes — they move only through [`ShardRouter::migrate_tree`].
#[derive(Clone, Debug)]
pub struct ShardRouter {
    shards: usize,
    /// The injected partition policy every new-ownership decision goes through.
    partitioner: Box<dyn Partitioner>,
    /// Owning shard of each post (the shard of its author).
    post_shard: HashMap<ElementId, usize>,
    /// Owning shard of each comment (the shard of its root post).
    comment_shard: HashMap<ElementId, usize>,
    /// Global live friendship adjacency (both directions stored).
    friend_adj: HashMap<ElementId, HashSet<ElementId>>,
    /// Users present (as likers of owned comments) per shard. Presence is
    /// monotone: extra replicated edges are harmless, missing ones are not.
    present: Vec<HashSet<ElementId>>,
    stats: ShardRouterStats,
}

impl ShardRouter {
    /// Build a router over the initial network with the default modulo policy.
    /// `shards == 0` is treated as 1.
    pub fn new(network: &SocialNetwork, shards: usize) -> Self {
        Self::with_partitioner(network, Box::new(ModuloPartitioner::new(shards)))
    }

    /// Build a router over the initial network with an injected partition
    /// policy (modulo, consistent-hash ring, assignment table, …).
    pub fn with_partitioner(network: &SocialNetwork, partitioner: Box<dyn Partitioner>) -> Self {
        let shards = partitioner.shard_count();
        let mut post_shard = HashMap::with_capacity(network.posts.len());
        for post in &network.posts {
            post_shard.insert(post.id, partitioner.shard_of(post.author));
        }
        let mut comment_shard = HashMap::with_capacity(network.comments.len());
        for comment in &network.comments {
            let shard = post_shard
                .get(&comment.root_post)
                .copied()
                .unwrap_or_else(|| partitioner.shard_of(comment.author));
            comment_shard.insert(comment.id, shard);
        }
        let mut friend_adj: HashMap<ElementId, HashSet<ElementId>> = HashMap::new();
        for &(a, b) in &network.friendships {
            friend_adj.entry(a).or_default().insert(b);
            friend_adj.entry(b).or_default().insert(a);
        }
        let mut present: Vec<HashSet<ElementId>> = vec![HashSet::new(); shards];
        for &(user, comment) in &network.likes {
            if let Some(&shard) = comment_shard.get(&comment) {
                present[shard].insert(user);
            }
        }
        ShardRouter {
            shards,
            partitioner,
            post_shard,
            comment_shard,
            friend_adj,
            present,
            stats: ShardRouterStats::default(),
        }
    }

    /// Number of shards this router partitions over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The injected partition policy (`"mod"`, `"ring"`, `"table"`, …).
    pub fn partitioner(&self) -> &dyn Partitioner {
        self.partitioner.as_ref()
    }

    /// Routing statistics accumulated since construction.
    pub fn stats(&self) -> ShardRouterStats {
        self.stats
    }

    /// Record a crash restore with the partition policy: the replacement
    /// evaluator at `to` re-owns the dead shard `from`'s entire slice (see
    /// [`Partitioner::redirect_shard`]). Today's recovery path always restores
    /// in place (`from == to`), which static policies model trivially; an
    /// [`datagen::partition::AssignmentTable`]-backed policy also
    /// accepts `from != to`, the move elastic resharding needs. Returns
    /// whether the policy recorded the move.
    pub fn record_restore(&mut self, from: usize, to: usize) -> bool {
        assert!(
            from < self.shards && to < self.shards,
            "restore {from} -> {to} out of range (shards: {})",
            self.shards
        );
        // always tell the policy: an in-place restore clears any stale
        // redirect an [`AssignmentTable`] may hold for this shard
        let recorded = self.partitioner.redirect_shard(from, to);
        recorded || from == to
    }

    /// Owning shard of a comment id, if the comment is known.
    pub fn shard_of_comment(&self, comment: ElementId) -> Option<usize> {
        self.comment_shard.get(&comment).copied()
    }

    /// Every live friendship edge as one canonical sorted `(min, max)` pair
    /// per edge. This global adjacency exists **only** here: a pair of friends
    /// never co-present on any shard appears in no per-shard mirror, so an
    /// elastic reshard must re-inject this set into the merged union network
    /// before re-partitioning it, or later presence backfills would miss those
    /// edges (see [`crate::recovery::ShardCheckpoint::merge`] and DESIGN.md
    /// §5.8).
    pub fn live_friendships(&self) -> Vec<(ElementId, ElementId)> {
        let mut edges: Vec<(ElementId, ElementId)> = self
            .friend_adj
            .iter()
            .flat_map(|(&a, friends)| friends.iter().map(move |&b| (a.min(b), a.max(b))))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Owning shard of a post id, if the post is known.
    pub fn shard_of_post(&self, post: ElementId) -> Option<usize> {
        self.post_shard.get(&post).copied()
    }

    /// Split the initial network into one sub-network per shard: the node
    /// registries are replicated (users are cheap and friendship endpoints must
    /// resolve), while the edge payload is partitioned — owned posts/comments,
    /// likes on owned comments, and exactly the friendship edges whose endpoints
    /// are both present in the shard.
    pub fn split_initial(&self, network: &SocialNetwork) -> Vec<SocialNetwork> {
        (0..self.shards)
            .map(|shard| SocialNetwork {
                users: network.users.clone(),
                posts: network
                    .posts
                    .iter()
                    .filter(|p| self.post_shard.get(&p.id) == Some(&shard))
                    .cloned()
                    .collect(),
                comments: network
                    .comments
                    .iter()
                    .filter(|c| self.comment_shard.get(&c.id) == Some(&shard))
                    .cloned()
                    .collect(),
                friendships: network
                    .friendships
                    .iter()
                    .filter(|&&(a, b)| {
                        self.present[shard].contains(&a) && self.present[shard].contains(&b)
                    })
                    .copied()
                    .collect(),
                likes: network
                    .likes
                    .iter()
                    .filter(|&&(_, comment)| self.comment_shard.get(&comment) == Some(&shard))
                    .copied()
                    .collect(),
            })
            .collect()
    }

    /// Route one changeset into per-shard changesets, preserving the relative
    /// order of the operations delivered to each shard.
    pub fn route(&mut self, changeset: &ChangeSet) -> Vec<ChangeSet> {
        let mut per_shard: Vec<Vec<ChangeOperation>> = vec![Vec::new(); self.shards];
        for op in &changeset.operations {
            match op {
                ChangeOperation::AddUser { .. } => {
                    // node registration: replicated so later friendship endpoints
                    // resolve in every shard
                    for ops in &mut per_shard {
                        ops.push(op.clone());
                    }
                    self.stats.broadcast_deliveries += self.shards as u64;
                }
                ChangeOperation::AddPost { post } => {
                    let shard = self.partitioner.shard_of(post.author);
                    self.post_shard.insert(post.id, shard);
                    per_shard[shard].push(op.clone());
                    self.stats.routed_operations += 1;
                }
                ChangeOperation::AddComment { comment } => {
                    let shard = self
                        .post_shard
                        .get(&comment.root_post)
                        .copied()
                        .unwrap_or_else(|| self.partitioner.shard_of(comment.author));
                    self.comment_shard.insert(comment.id, shard);
                    per_shard[shard].push(op.clone());
                    self.stats.routed_operations += 1;
                }
                ChangeOperation::AddLike { user, comment } => {
                    if let Some(&shard) = self.comment_shard.get(comment) {
                        self.make_present(*user, shard, &mut per_shard[shard]);
                        per_shard[shard].push(op.clone());
                        self.stats.routed_operations += 1;
                    }
                }
                ChangeOperation::RemoveLike { comment, .. } => {
                    // presence is monotone, so no replica bookkeeping changes
                    if let Some(&shard) = self.comment_shard.get(comment) {
                        per_shard[shard].push(op.clone());
                        self.stats.routed_operations += 1;
                    }
                }
                ChangeOperation::AddFriendship { a, b } => {
                    self.friend_adj.entry(*a).or_default().insert(*b);
                    self.friend_adj.entry(*b).or_default().insert(*a);
                    for (present, ops) in self.present.iter().zip(&mut per_shard) {
                        if present.contains(a) && present.contains(b) {
                            ops.push(op.clone());
                            self.stats.friendship_deliveries += 1;
                        }
                    }
                }
                ChangeOperation::RemoveFriendship { a, b } => {
                    if let Some(adj) = self.friend_adj.get_mut(a) {
                        adj.remove(b);
                    }
                    if let Some(adj) = self.friend_adj.get_mut(b) {
                        adj.remove(a);
                    }
                    // the replica set of a live edge is exactly the shards where
                    // both endpoints are present (imports keep that invariant),
                    // so those are the only shards that can hold the edge
                    for (present, ops) in self.present.iter().zip(&mut per_shard) {
                        if present.contains(a) && present.contains(b) {
                            ops.push(op.clone());
                            self.stats.friendship_deliveries += 1;
                        }
                    }
                }
            }
        }
        per_shard
            .into_iter()
            .map(|operations| ChangeSet { operations })
            .collect()
    }

    /// Mark `user` present in `shard`; on first presence, backfill the boundary
    /// replicas: the user's live friendship edges whose other endpoint is already
    /// present in the shard (edges towards users arriving later are imported when
    /// *those* users arrive).
    fn make_present(&mut self, user: ElementId, shard: usize, ops: &mut Vec<ChangeOperation>) {
        if !self.present[shard].insert(user) {
            return;
        }
        if let Some(friends) = self.friend_adj.get(&user) {
            let mut imports: Vec<ElementId> = friends
                .iter()
                .copied()
                .filter(|friend| self.present[shard].contains(friend))
                .collect();
            imports.sort_unstable(); // deterministic replica order
            for friend in imports {
                ops.push(ChangeOperation::AddFriendship { a: user, b: friend });
                self.stats.imported_boundary_edges += 1;
            }
        }
    }

    /// Re-own a discussion tree during a migration: point the sticky maps of
    /// `root` and its `comments` at `to`, record `author`'s future assignment in
    /// the partition policy (a no-op for static policies — see
    /// [`Partitioner::reassign`]), and mark the tree's `likers` present in the
    /// recipient shard.
    ///
    /// Returns the boundary-replica **import** operations the recipient must
    /// apply *before* the tree's likes: for every liker newly present in `to`,
    /// their live friendship edges towards users already present there — the
    /// exact presence-tracked backfill [`ShardRouter::route`] performs when a
    /// liker arrives through a routed `AddLike`, so the §5.2 replica invariant
    /// ("edge in shard iff both endpoints present") is restored by construction.
    ///
    /// The donor's bookkeeping is deliberately left untouched: presence is
    /// monotone (superfluous replicas never change a score), so no donor-side
    /// replica retraction is needed or emitted.
    pub fn migrate_tree(
        &mut self,
        root: ElementId,
        author: ElementId,
        comments: &[ElementId],
        likers: &[ElementId],
        to: usize,
    ) -> Vec<ChangeOperation> {
        assert!(to < self.shards, "migration target shard out of range");
        self.post_shard.insert(root, to);
        for &comment in comments {
            self.comment_shard.insert(comment, to);
        }
        self.partitioner.reassign(author, to);
        let mut imports = Vec::new();
        for &liker in likers {
            self.make_present(liker, to, &mut imports);
        }
        imports
    }
}

// ---------------------------------------------------------------------------
// Per-shard evaluators
// ---------------------------------------------------------------------------

/// The query backend every shard runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardBackend {
    /// Full per-shard recomputation each batch (the sharded analogue of
    /// [`crate::solution::GraphBlasBatch`]).
    Batch,
    /// Incremental maintenance (Alg. 2 / affected-comments re-scoring).
    Incremental,
    /// Incremental maintenance with the incremental-CC backend (Q2 only; Q1
    /// falls back to [`ShardBackend::Incremental`]).
    IncrementalCc,
}

/// One shard's slice of the query state, behind the stage-callable interface the
/// apply phase of both ingestion engines drives: the synchronous barrier driver
/// ([`ShardedSolution`]) applies every shard in lock-step per batch, the staged
/// pipeline ([`crate::pipeline::PipelinedEngine`]) moves each evaluator into its
/// own long-lived worker thread.
///
/// The `Send` supertrait is what lets an evaluator migrate into a worker thread;
/// implementations must not share mutable state across shards (the whole point
/// of the partition is that they cannot).
pub trait ShardEvaluator: Send {
    /// Apply one routed changeset and refresh this shard's candidates. Returns
    /// whether the changeset retracted an edge of this shard — in which case the
    /// cross-shard merge must rebuild rather than merge (see [`ShardMerger`]).
    fn apply(&mut self, changeset: &ChangeSet) -> bool;

    /// Current top-k candidates of this shard, best first, with **exact global
    /// scores** (ownership is a partition, so no score is split across shards).
    fn candidates(&self) -> &[RankedEntry];

    /// `(posts, comments)` owned by this shard, for balance/skew inspection.
    fn owned_sizes(&self) -> (usize, usize);
}

/// Builds one [`ShardEvaluator`] per shard sub-network (as produced by
/// [`ShardRouter::split_initial`]). `Send + Sync` so the per-shard builds can
/// run on the rayon pool and the factory can be shared with stage threads.
pub trait ShardFactory: Send + Sync {
    /// Build the evaluator over one shard's sub-network, initial candidates
    /// included.
    fn build(&self, part: &SocialNetwork) -> Box<dyn ShardEvaluator>;

    /// Which query the evaluators answer.
    fn query(&self) -> Query;

    /// Base display name without the shard count, e.g.
    /// `"GraphBLAS Sharded Incremental"`.
    fn name(&self) -> String;
}

/// The [`ShardFactory`] of the GraphBLAS backends: each shard runs an unmodified
/// single-shard evaluator ([`Q1Incremental`], [`Q2Incremental`],
/// [`Q2IncrementalCc`], or batch recompute) over its own sub-graph.
#[derive(Copy, Clone, Debug)]
pub struct GraphBlasShardFactory {
    query: Query,
    backend: ShardBackend,
    /// Per-shard kernels stay serial: the pipeline's parallelism is *across*
    /// shards, and nesting rayon pools would oversubscribe the workers.
    parallel_kernels: bool,
    k: usize,
}

impl GraphBlasShardFactory {
    /// Create a factory for `query` with the given per-shard `backend`.
    pub fn new(query: Query, backend: ShardBackend) -> Self {
        GraphBlasShardFactory {
            query,
            backend,
            parallel_kernels: false,
            k: TOP_K,
        }
    }
}

impl ShardFactory for GraphBlasShardFactory {
    fn build(&self, part: &SocialNetwork) -> Box<dyn ShardEvaluator> {
        Box::new(Shard::new(
            part,
            self.query,
            self.backend,
            self.parallel_kernels,
            self.k,
        ))
    }

    fn query(&self) -> Query {
        self.query
    }

    fn name(&self) -> String {
        let backend = match self.backend {
            ShardBackend::Batch => "Batch",
            ShardBackend::Incremental => "Incremental",
            ShardBackend::IncrementalCc => "Incremental CC",
        };
        format!("GraphBLAS Sharded {backend}")
    }
}

enum ShardState {
    Batch(Query),
    Q1(Q1Incremental),
    Q2(Q2Incremental),
    Q2Cc(Q2IncrementalCc),
}

struct Shard {
    graph: SocialGraph,
    state: ShardState,
    parallel_kernels: bool,
    k: usize,
    /// Current top-k candidates of this shard, best first, with exact scores.
    candidates: Vec<RankedEntry>,
}

impl Shard {
    fn new(
        network: &SocialNetwork,
        query: Query,
        backend: ShardBackend,
        parallel_kernels: bool,
        k: usize,
    ) -> Self {
        let graph = SocialGraph::from_network(network);
        let (state, candidates) = match (backend, query) {
            (ShardBackend::Batch, Query::Q1) => (
                ShardState::Batch(query),
                q1_batch_ranked(&graph, parallel_kernels, k),
            ),
            (ShardBackend::Batch, Query::Q2) => (
                ShardState::Batch(query),
                q2_batch_ranked(&graph, parallel_kernels, k),
            ),
            (ShardBackend::Incremental, Query::Q1) | (ShardBackend::IncrementalCc, Query::Q1) => {
                let mut q1 = Q1Incremental::new(parallel_kernels, k);
                q1.initialize(&graph);
                let candidates = q1.candidates().to_vec();
                (ShardState::Q1(q1), candidates)
            }
            (ShardBackend::Incremental, Query::Q2) => {
                let mut q2 = Q2Incremental::new(parallel_kernels, k);
                q2.initialize(&graph);
                let candidates = q2.candidates().to_vec();
                (ShardState::Q2(q2), candidates)
            }
            (ShardBackend::IncrementalCc, Query::Q2) => {
                let mut q2 = Q2IncrementalCc::new(k);
                q2.initialize(&graph);
                let candidates = q2.candidates().to_vec();
                (ShardState::Q2Cc(q2), candidates)
            }
        };
        Shard {
            graph,
            state,
            parallel_kernels,
            k,
            candidates,
        }
    }
}

impl ShardEvaluator for Shard {
    /// Apply one routed changeset and refresh the shard's candidates. Returns
    /// whether the changeset retracted any edge of this shard (in which case the
    /// cross-shard merge must rebuild rather than merge).
    fn apply(&mut self, changeset: &ChangeSet) -> bool {
        if changeset.operations.is_empty() {
            return false;
        }
        let delta = apply_changeset(&mut self.graph, changeset);
        let had_removals = delta.has_removals();
        self.candidates = match &mut self.state {
            ShardState::Batch(Query::Q1) => {
                q1_batch_ranked(&self.graph, self.parallel_kernels, self.k)
            }
            ShardState::Batch(Query::Q2) => {
                q2_batch_ranked(&self.graph, self.parallel_kernels, self.k)
            }
            ShardState::Q1(q1) => {
                q1.update(&self.graph, &delta);
                q1.candidates().to_vec()
            }
            ShardState::Q2(q2) => {
                q2.update(&self.graph, &delta);
                q2.candidates().to_vec()
            }
            ShardState::Q2Cc(q2) => {
                q2.update(&self.graph, &delta);
                q2.candidates().to_vec()
            }
        };
        had_removals
    }

    fn candidates(&self) -> &[RankedEntry] {
        &self.candidates
    }

    fn owned_sizes(&self) -> (usize, usize) {
        (self.graph.post_count(), self.graph.comment_count())
    }
}

// ---------------------------------------------------------------------------
// Cross-shard merge
// ---------------------------------------------------------------------------

/// The cross-shard top-k merge policy, factored out so the synchronous barrier
/// driver and the pipelined engine's watermark merger apply the *same* rule:
///
/// * **Monotone batch** (no shard reported an effective retraction):
///   [`TopKTracker::merge_changes`] over the union of the per-shard candidate
///   lists. Exact because scores only grew — any stale global entry is outranked
///   by its shard's `k` fresh candidates.
/// * **Batch with retractions**: a retraction may have pushed a submission out
///   of some shard's candidates entirely, so stale global entries must not
///   survive; the tracker is rebuilt from the union. Exact because ownership is
///   a partition: a submission in the true global top-k is in its own shard's
///   exactly-maintained top-k, hence in the union.
///
/// See `DESIGN.md` §5.3 for the full correctness argument.
#[derive(Clone, Debug)]
pub struct ShardMerger {
    tracker: TopKTracker,
}

impl ShardMerger {
    /// Create a merger maintaining the global top `k`.
    pub fn new(k: usize) -> Self {
        ShardMerger {
            tracker: TopKTracker::new(k),
        }
    }

    /// Fold one batch's union of per-shard candidates into the global top-k and
    /// return the rendered result. `any_removals` selects the policy above.
    pub fn merge(&mut self, union: Vec<RankedEntry>, any_removals: bool) -> String {
        if any_removals {
            self.tracker.rebuild(union);
        } else {
            self.tracker.merge_changes(union);
        }
        self.tracker.format()
    }

    /// The global top-k after the most recent merge, best first — the ranked
    /// material [`crate::serve::QueryView`]s are frozen from.
    pub fn current(&self) -> &[RankedEntry] {
        self.tracker.current()
    }
}

// ---------------------------------------------------------------------------
// Sharded solution
// ---------------------------------------------------------------------------

/// The load phase both sharded engines share: partition `network` across
/// `shards`, build one evaluator per shard (rayon-parallel), and fold the
/// initial per-shard candidates through a fresh [`ShardMerger`]. Returns the
/// router, the evaluators, the merger (already holding the initial global
/// state), and the initial result.
///
/// The synchronous [`ShardedSolution`] and the pipelined engine
/// ([`crate::pipeline::PipelinedEngine`]) both start from this one function —
/// the byte-identity the differential tests guarantee depends on the two
/// engines never drifting apart in how they partition, build, or seed the
/// merge state.
pub fn load_shards(
    factory: &dyn ShardFactory,
    network: &SocialNetwork,
    shards: usize,
) -> (
    ShardRouter,
    Vec<Box<dyn ShardEvaluator>>,
    ShardMerger,
    String,
) {
    load_shards_with(factory, network, Box::new(ModuloPartitioner::new(shards)))
}

/// [`load_shards`] with an injected partition policy instead of the default
/// modulo — the entry point both engines use when a `--partitioner` other than
/// `mod` is selected.
pub fn load_shards_with(
    factory: &dyn ShardFactory,
    network: &SocialNetwork,
    partitioner: Box<dyn Partitioner>,
) -> (
    ShardRouter,
    Vec<Box<dyn ShardEvaluator>>,
    ShardMerger,
    String,
) {
    let (router, _parts, evaluators, merger, initial) =
        load_shards_parts(factory, network, partitioner);
    (router, evaluators, merger, initial)
}

/// [`load_shards_with`], additionally returning the per-shard sub-networks the
/// evaluators were built from — rebalancing-enabled solutions keep them as
/// their mirrors instead of paying [`ShardRouter::split_initial`] twice, and
/// the pipelined engine's recovery path seeds its initial per-shard
/// checkpoints from them.
pub(crate) fn load_shards_parts(
    factory: &dyn ShardFactory,
    network: &SocialNetwork,
    partitioner: Box<dyn Partitioner>,
) -> (
    ShardRouter,
    Vec<SocialNetwork>,
    Vec<Box<dyn ShardEvaluator>>,
    ShardMerger,
    String,
) {
    let router = ShardRouter::with_partitioner(network, partitioner);
    let parts = router.split_initial(network);
    let evaluators: Vec<Box<dyn ShardEvaluator>> =
        parts.par_iter().map(|part| factory.build(part)).collect();
    let mut merger = ShardMerger::new(TOP_K);
    let union: Vec<RankedEntry> = evaluators
        .iter()
        .flat_map(|e| e.candidates().iter().copied())
        .collect();
    let initial = merger.merge(union, true);
    (router, parts, evaluators, merger, initial)
}

/// Configuration of the skew monitor behind [`ShardedSolution::with_rebalancing`].
///
/// The monitor runs between micro-batches, reading the same load signal the
/// `stream_throughput` report surfaces as `shard_sizes` (owned posts +
/// comments per shard). When the hottest shard's load exceeds
/// `skew_threshold ×` the mean, the largest discussion tree that still fits
/// the donor–recipient gap is migrated to the coldest shard (see
/// [`ShardedSolution::migrate_tree`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RebalanceConfig {
    /// Batches between skew checks. `0` disables the automatic monitor while
    /// still maintaining the per-shard mirrors, so explicit
    /// [`ShardedSolution::migrate_tree`] calls (tests, operators) keep working.
    pub check_every: usize,
    /// Trigger threshold: migrate when `max_load > skew_threshold × mean_load`.
    /// Must be `> 1.0`; values close to 1 chase noise, large values tolerate
    /// skew.
    pub skew_threshold: f64,
    /// Upper bound on migrations per triggered check (each migration rebuilds
    /// the donor shard, so this caps the pause a check may introduce).
    pub max_migrations_per_check: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            check_every: 8,
            skew_threshold: 1.5,
            max_migrations_per_check: 1,
        }
    }
}

/// Counters of the skew monitor, surfaced in the `stream_throughput` report's
/// `rebalance` block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Skew checks performed (every `check_every` batches).
    pub checks: u64,
    /// Discussion trees migrated.
    pub migrations: u64,
    /// Comments moved across shards by those migrations.
    pub migrated_comments: u64,
    /// Likes moved across shards by those migrations.
    pub migrated_likes: u64,
}

/// Why an explicit [`ShardedSolution::migrate_tree`] call was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrateError {
    /// The solution was built without [`ShardedSolution::with_rebalancing`], so
    /// no per-shard mirrors exist to extract a tree from.
    RebalancingDisabled,
    /// The root post id is not owned by any shard (unknown or not a post).
    UnknownRoot(ElementId),
    /// The target shard index is `>=` the shard count.
    ShardOutOfRange(usize),
    /// The tree already lives on the requested target shard.
    AlreadyOwned(usize),
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::RebalancingDisabled => {
                write!(f, "rebalancing is not enabled on this solution")
            }
            MigrateError::UnknownRoot(root) => write!(f, "unknown root post {root}"),
            MigrateError::ShardOutOfRange(shard) => {
                write!(f, "target shard {shard} out of range")
            }
            MigrateError::AlreadyOwned(shard) => {
                write!(f, "tree already lives on shard {shard}")
            }
        }
    }
}

impl std::error::Error for MigrateError {}

/// A [`Solution`] that partitions the graph across `N` shards and processes every
/// micro-batch as a synchronous barrier pipeline: route → per-shard apply +
/// recompute (rayon-parallel across shards) → cross-shard top-k merge. The
/// per-shard backend is pluggable via [`ShardFactory`] — [`ShardedSolution::new`]
/// wires the GraphBLAS backends, `nmf_baseline` supplies the NMF dependency-record
/// evaluator — and so is the partition policy
/// ([`ShardedSolution::with_factory_and_partitioner`]). The asynchronous
/// counterpart that overlaps batches across the same pieces lives in
/// [`crate::pipeline`]. See the [module documentation](self).
///
/// With [`ShardedSolution::with_rebalancing`], the solution additionally
/// maintains one mirror [`SocialNetwork`] per shard (the replayable source of
/// truth for what each shard holds) and runs the skew monitor between batches;
/// see [`ShardedSolution::migrate_tree`] for the migration protocol and
/// `DESIGN.md` §5.6 for the correctness argument.
pub struct ShardedSolution {
    factory: Box<dyn ShardFactory>,
    shard_count: usize,
    /// The pristine policy; cloned into the router on every load so repeated
    /// loads never inherit a previous run's migration overrides.
    partitioner: Box<dyn Partitioner>,
    router: Option<ShardRouter>,
    shards: Vec<Box<dyn ShardEvaluator>>,
    merger: ShardMerger,
    /// Per-shard per-batch update latencies (seconds), recorded by
    /// [`Solution::update_and_reevaluate`] for the benchmark report.
    per_shard_latencies: Vec<Vec<f64>>,
    /// Rebalancing: skew-monitor configuration (`None` = disabled, no mirrors).
    rebalance: Option<RebalanceConfig>,
    /// One mirror network per shard, maintained only when rebalancing is
    /// enabled: the routed changesets are replayed onto plain [`SocialNetwork`]s
    /// so a migration can extract a tree's full payload (timestamps, authors,
    /// parents) and rebuild the donor — state no [`ShardEvaluator`] is required
    /// to expose.
    mirrors: Vec<SocialNetwork>,
    rebalance_stats: RebalanceStats,
    batches_since_check: usize,
}

impl ShardedSolution {
    /// Create a sharded solution answering `query` on `shards` shards with the
    /// given per-shard GraphBLAS `backend`. Per-shard kernels stay serial: the
    /// pipeline's parallelism is *across* shards, and nesting rayon pools would
    /// oversubscribe the workers.
    pub fn new(query: Query, backend: ShardBackend, shards: usize) -> Self {
        Self::with_factory(Box::new(GraphBlasShardFactory::new(query, backend)), shards)
    }

    /// Create a sharded solution over an arbitrary per-shard backend with the
    /// default modulo partition policy. `shards == 0` is treated as 1.
    pub fn with_factory(factory: Box<dyn ShardFactory>, shards: usize) -> Self {
        Self::with_factory_and_partitioner(factory, Box::new(ModuloPartitioner::new(shards)))
    }

    /// Create a sharded solution over an arbitrary per-shard backend and an
    /// injected partition policy; the shard count is the policy's.
    pub fn with_factory_and_partitioner(
        factory: Box<dyn ShardFactory>,
        partitioner: Box<dyn Partitioner>,
    ) -> Self {
        let shard_count = partitioner.shard_count();
        ShardedSolution {
            factory,
            shard_count,
            partitioner,
            router: None,
            shards: Vec::new(),
            merger: ShardMerger::new(TOP_K),
            per_shard_latencies: Vec::new(),
            rebalance: None,
            mirrors: Vec::new(),
            rebalance_stats: RebalanceStats::default(),
            batches_since_check: 0,
        }
    }

    /// Enable tree-migration rebalancing: maintain per-shard mirrors and run
    /// the skew monitor of `config` between micro-batches.
    pub fn with_rebalancing(mut self, config: RebalanceConfig) -> Self {
        self.rebalance = Some(config);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Name of the partition policy in effect (`"mod"`, `"ring"`, `"table"`).
    pub fn partitioner_name(&self) -> &'static str {
        self.partitioner.name()
    }

    /// Router statistics (zeroed until [`Solution::load_and_initial`] runs).
    pub fn router_stats(&self) -> ShardRouterStats {
        self.router.as_ref().map(|r| r.stats()).unwrap_or_default()
    }

    /// Skew-monitor statistics (all zero while rebalancing is disabled).
    pub fn rebalance_stats(&self) -> RebalanceStats {
        self.rebalance_stats
    }

    /// Per-shard per-batch update latencies in seconds, indexed `[shard][batch]`.
    pub fn per_shard_latencies(&self) -> &[Vec<f64>] {
        &self.per_shard_latencies
    }

    /// Number of (posts, comments) owned by each shard, for balance inspection.
    pub fn shard_sizes(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| s.owned_sizes()).collect()
    }

    fn merge(&mut self, any_removals: bool) -> String {
        let union: Vec<RankedEntry> = self
            .shards
            .iter()
            .flat_map(|shard| shard.candidates().iter().copied())
            .collect();
        self.merger.merge(union, any_removals)
    }

    /// Migrate the discussion tree rooted at post `root` to shard `to`:
    ///
    /// 1. **Extract** the tree's sub-network — the root post, its comments, and
    ///    the likes on those comments — from the donor shard's mirror.
    /// 2. **Re-own** it in the router ([`ShardRouter::migrate_tree`]): sticky
    ///    maps point at the recipient, the partition policy records the
    ///    author's future assignment, and the presence-tracked backfill yields
    ///    the friendship **imports** the recipient needs for the tree's likers.
    /// 3. **Apply** imports + tree to the recipient as an initial-load delta
    ///    (an ordinary insert-only changeset through [`ShardEvaluator::apply`]).
    /// 4. **Rebuild** the donor evaluator from its shrunken mirror (the model
    ///    has no post/comment retractions, so the donor cannot be delta-shrunk).
    ///
    /// The migration is invisible to the merged output: every submission keeps
    /// its exact score, it is merely computed on a different shard from the
    /// next batch on (`DESIGN.md` §5.6 gives the argument; the rebalancing
    /// differential tests enforce it byte-for-byte).
    pub fn migrate_tree(&mut self, root: ElementId, to: usize) -> Result<(), MigrateError> {
        if self.rebalance.is_none() {
            return Err(MigrateError::RebalancingDisabled);
        }
        if to >= self.shard_count {
            return Err(MigrateError::ShardOutOfRange(to));
        }
        let router = self
            .router
            .as_mut()
            .expect("load_and_initial must run before migrations"); // lint: allow(panic) — migrate() is only reachable after load_and_initial per the Solution contract
        let donor = router
            .shard_of_post(root)
            .ok_or(MigrateError::UnknownRoot(root))?;
        if donor == to {
            return Err(MigrateError::AlreadyOwned(to));
        }

        // 1. extract the tree from the donor mirror (order-preserving, so the
        //    recipient replays comments parent-before-child and likes after
        //    their comments, exactly as the original stream delivered them)
        let donor_mirror = &self.mirrors[donor];
        let post = donor_mirror
            .posts
            .iter()
            .find(|p| p.id == root)
            .cloned()
            .ok_or(MigrateError::UnknownRoot(root))?;
        let comments: Vec<Comment> = donor_mirror
            .comments
            .iter()
            .filter(|c| c.root_post == root)
            .cloned()
            .collect();
        let comment_ids: HashSet<ElementId> = comments.iter().map(|c| c.id).collect();
        let likes: Vec<(ElementId, ElementId)> = donor_mirror
            .likes
            .iter()
            .filter(|&&(_, comment)| comment_ids.contains(&comment))
            .copied()
            .collect();
        let mut likers: Vec<ElementId> = Vec::new();
        let mut seen = HashSet::new();
        for &(user, _) in &likes {
            if seen.insert(user) {
                likers.push(user); // first-appearance order, as routing would see it
            }
        }

        // 2. re-own in the router; collect the recipient's friendship imports
        let comment_id_list: Vec<ElementId> = comments.iter().map(|c| c.id).collect();
        let imports = router.migrate_tree(root, post.author, &comment_id_list, &likers, to);

        // 3. the initial-load delta: imports first (friendships only need the
        //    replicated user registry), then the tree topology, then its likes
        let mut operations = imports;
        operations.push(ChangeOperation::AddPost { post: post.clone() });
        operations.extend(comments.iter().map(|comment| ChangeOperation::AddComment {
            comment: comment.clone(),
        }));
        operations.extend(
            likes
                .iter()
                .map(|&(user, comment)| ChangeOperation::AddLike { user, comment }),
        );
        let delta = ChangeSet { operations };

        // 4. shrink the donor mirror, grow the recipient mirror, and swap the
        //    evaluators' state to match: recipient applies the delta
        //    incrementally, the donor is rebuilt from its remaining sub-network
        let donor_mirror = &mut self.mirrors[donor];
        donor_mirror.posts.retain(|p| p.id != root);
        donor_mirror.comments.retain(|c| c.root_post != root);
        donor_mirror
            .likes
            .retain(|(_, comment)| !comment_ids.contains(comment));
        apply_network_changeset(&mut self.mirrors[to], &delta);
        self.shards[to].apply(&delta);
        self.shards[donor] = self.factory.build(&self.mirrors[donor]);

        self.rebalance_stats.migrations += 1;
        self.rebalance_stats.migrated_comments += comments.len() as u64;
        self.rebalance_stats.migrated_likes += likes.len() as u64;
        Ok(())
    }

    /// The skew monitor: every `check_every` batches, compare the per-shard
    /// loads (posts + comments, the `shard_sizes` signal) and migrate the
    /// largest donor trees that still fit the donor–recipient gap. A tree of
    /// load `s` only shrinks the gap when `s < gap` (the move transfers `s`
    /// from donor to recipient, changing the gap by `−2s`), so larger trees
    /// are skipped rather than ping-ponged.
    fn maybe_rebalance(&mut self) {
        let Some(config) = self.rebalance.clone() else {
            return;
        };
        if config.check_every == 0 {
            return;
        }
        self.batches_since_check += 1;
        if self.batches_since_check < config.check_every {
            return;
        }
        self.batches_since_check = 0;
        self.rebalance_stats.checks += 1;
        for _ in 0..config.max_migrations_per_check.max(1) {
            let loads: Vec<usize> = self
                .mirrors
                .iter()
                .map(|m| m.posts.len() + m.comments.len())
                .collect();
            let donor = (0..loads.len())
                .max_by_key(|&s| loads[s])
                .expect("at least one shard"); // lint: allow(panic) — rebalance configs are validated to at least one shard
            let recipient = (0..loads.len())
                .min_by_key(|&s| loads[s])
                .expect("at least one shard"); // lint: allow(panic) — rebalance configs are validated to at least one shard
            let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
            if donor == recipient || (loads[donor] as f64) <= config.skew_threshold * mean {
                break;
            }
            let gap = loads[donor] - loads[recipient];
            // largest donor tree with load < gap (ties resolve deterministically
            // to the last such post in mirror order)
            let mut comments_per_root: HashMap<ElementId, usize> = HashMap::new();
            for comment in &self.mirrors[donor].comments {
                *comments_per_root.entry(comment.root_post).or_insert(0) += 1;
            }
            let candidate = self.mirrors[donor]
                .posts
                .iter()
                .map(|p| (p.id, 1 + comments_per_root.get(&p.id).copied().unwrap_or(0)))
                .filter(|&(_, size)| size < gap)
                .max_by_key(|&(_, size)| size);
            let Some((root, _)) = candidate else {
                break; // every tree is at least as large as the gap: moving any would overshoot
            };
            self.migrate_tree(root, recipient)
                .expect("monitor-selected migration is always valid"); // lint: allow(panic) — the monitor only proposes migrations between live shards
        }
    }
}

impl Solution for ShardedSolution {
    fn name(&self) -> String {
        if self.partitioner.name() == "mod" {
            format!("{} ({} shards)", self.factory.name(), self.shard_count)
        } else {
            format!(
                "{} ({} shards, {})",
                self.factory.name(),
                self.shard_count,
                self.partitioner.name()
            )
        }
    }

    fn query(&self) -> Query {
        self.factory.query()
    }

    fn load_and_initial(&mut self, network: &SocialNetwork) -> String {
        let (router, parts, shards, merger, initial) =
            load_shards_parts(self.factory.as_ref(), network, self.partitioner.clone());
        // the mirrors start as the very sub-networks the evaluators were built
        // from — no second split, no chance of divergence
        self.mirrors = if self.rebalance.is_some() {
            parts
        } else {
            Vec::new()
        };
        self.router = Some(router);
        self.shards = shards;
        self.merger = merger;
        self.per_shard_latencies = vec![Vec::new(); self.shard_count];
        self.rebalance_stats = RebalanceStats::default();
        self.batches_since_check = 0;
        initial
    }

    fn update_and_reevaluate(&mut self, changeset: &ChangeSet) -> String {
        let router = self
            .router
            .as_mut()
            .expect("load_and_initial must run before updates"); // lint: allow(panic) — update_and_reevaluate follows load_and_initial per the Solution contract
        let routed = router.route(changeset);
        if self.rebalance.is_some() {
            // keep the per-shard mirrors replaying exactly what the evaluators
            // see (imports included), so a migration can extract any tree later
            for (mirror, ops) in self.mirrors.iter_mut().zip(&routed) {
                apply_network_changeset(mirror, ops);
            }
        }
        let tasks: Vec<(&mut Box<dyn ShardEvaluator>, ChangeSet)> =
            self.shards.iter_mut().zip(routed).collect();
        let outcomes: Vec<(bool, f64)> = tasks
            .into_par_iter()
            .map(|(shard, ops)| {
                let start = Instant::now();
                let had_removals = shard.apply(&ops);
                (had_removals, start.elapsed().as_secs_f64())
            })
            .collect();
        let mut any_removals = false;
        for (shard, &(had_removals, secs)) in outcomes.iter().enumerate() {
            any_removals |= had_removals;
            self.per_shard_latencies[shard].push(secs);
        }
        let result = self.merge(any_removals);
        // rebalancing runs strictly between batches: the result above is already
        // merged, and the next batch sees the (possibly migrated) new ownership
        self.maybe_rebalance();
        result
    }

    fn candidate_snapshot(&self) -> Option<crate::serve::CandidateSnapshot> {
        let candidates: Vec<RankedEntry> = self
            .shards
            .iter()
            .flat_map(|shard| shard.candidates().iter().copied())
            .collect();
        Some(crate::serve::CandidateSnapshot {
            top: self.merger.current().to_vec(),
            candidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::{GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc};
    use datagen::stream::{shard_of_user, StreamConfig, UpdateStream};
    use datagen::{generate_workload, GeneratorConfig};

    fn network(seed: u64) -> SocialNetwork {
        generate_workload(&GeneratorConfig::tiny(seed)).initial
    }

    fn retraction_stream(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
        UpdateStream::new(
            network,
            StreamConfig {
                seed,
                batch_size: 12,
                deletion_weight: 0.3,
                ..StreamConfig::default()
            },
        )
        .take(count)
        .collect()
    }

    #[test]
    fn router_partitions_whole_discussion_trees() {
        let network = network(11);
        let router = ShardRouter::new(&network, 4);
        for comment in &network.comments {
            let author = network
                .posts
                .iter()
                .find(|p| p.id == comment.root_post)
                .expect("root post exists")
                .author;
            assert_eq!(
                router.shard_of_comment(comment.id),
                Some(shard_of_user(author, 4)),
                "comment {} does not follow its root post",
                comment.id
            );
            assert_eq!(
                router.shard_of_comment(comment.id),
                router.shard_of_post(comment.root_post),
            );
        }
    }

    #[test]
    fn split_initial_partitions_the_edge_payload() {
        let network = network(13);
        let shards = 3;
        let router = ShardRouter::new(&network, shards);
        let parts = router.split_initial(&network);
        assert_eq!(parts.len(), shards);
        let posts: usize = parts.iter().map(|p| p.posts.len()).sum();
        let comments: usize = parts.iter().map(|p| p.comments.len()).sum();
        let likes: usize = parts.iter().map(|p| p.likes.len()).sum();
        assert_eq!(posts, network.posts.len());
        assert_eq!(comments, network.comments.len());
        assert_eq!(likes, network.likes.len());
        // friendship replicas may appear in several shards, but never more often
        // than once per shard
        for part in &parts {
            let mut seen = HashSet::new();
            for &(a, b) in &part.friendships {
                assert!(seen.insert((a.min(b), a.max(b))), "duplicate replica");
            }
            assert_eq!(part.users.len(), network.users.len(), "registry replicated");
        }
    }

    #[test]
    fn boundary_friendships_are_imported_on_first_presence() {
        use datagen::{Comment, Post, User};
        // users 1..=4; two-way partition puts odd users in shard 1
        let network = SocialNetwork {
            users: (1..=4)
                .map(|id| User {
                    id,
                    name: format!("u{id}"),
                })
                .collect(),
            posts: vec![Post {
                id: 10,
                timestamp: 1,
                author: 1, // shard 1 owns the whole tree
            }],
            comments: vec![Comment {
                id: 20,
                timestamp: 2,
                author: 2,
                parent: 10,
                root_post: 10,
            }],
            // u3 and u4 are friends from the start, but neither likes anything yet
            friendships: vec![(3, 4)],
            // u4 likes c20: present(shard 1) = {4}
            likes: vec![(4, 20)],
        };
        let mut router = ShardRouter::new(&network, 2);
        // u3 now likes c20 too: the router must import the live (3, 4) edge into
        // shard 1 ahead of the like, so the shard's CC sees one 2-user component
        let routed = router.route(&ChangeSet {
            operations: vec![ChangeOperation::AddLike {
                user: 3,
                comment: 20,
            }],
        });
        assert!(routed[0].operations.is_empty());
        assert_eq!(
            routed[1].operations,
            vec![
                ChangeOperation::AddFriendship { a: 3, b: 4 },
                ChangeOperation::AddLike {
                    user: 3,
                    comment: 20
                },
            ]
        );
        assert_eq!(router.stats().imported_boundary_edges, 1);
        assert_eq!(router.stats().routed_operations, 1);

        // and the full pipeline scores c20 as one component of two friends
        let mut sharded = ShardedSolution::new(Query::Q2, ShardBackend::IncrementalCc, 2);
        sharded.load_and_initial(&network);
        let result = sharded.update_and_reevaluate(&ChangeSet {
            operations: vec![ChangeOperation::AddLike {
                user: 3,
                comment: 20,
            }],
        });
        let mut reference = GraphBlasIncrementalCc::new();
        reference.load_and_initial(&network);
        let expected = reference.update_and_reevaluate(&ChangeSet {
            operations: vec![ChangeOperation::AddLike {
                user: 3,
                comment: 20,
            }],
        });
        assert_eq!(result, expected);
    }

    #[test]
    fn friendship_retractions_reach_every_replica() {
        let network = network(17);
        let mut router = ShardRouter::new(&network, 2);
        // find a friendship whose endpoints are present in at least one shard
        let (a, b) = network
            .friendships
            .iter()
            .copied()
            .find(|&(a, b)| {
                (0..2).any(|s| router.present[s].contains(&a) && router.present[s].contains(&b))
            })
            .expect("tiny network has a co-liking friendship");
        let expected_shards: Vec<usize> = (0..2)
            .filter(|&s| router.present[s].contains(&a) && router.present[s].contains(&b))
            .collect();
        let routed = router.route(&ChangeSet {
            operations: vec![ChangeOperation::RemoveFriendship { a, b }],
        });
        for (shard, delivered) in routed.iter().enumerate() {
            assert_eq!(
                !delivered.operations.is_empty(),
                expected_shards.contains(&shard),
                "replica delivery mismatch in shard {shard}"
            );
        }
    }

    #[test]
    fn sharded_variants_agree_with_unsharded_on_retraction_heavy_streams() {
        let network = network(29);
        let batches = retraction_stream(&network, 0xdead, 10);
        for query in [Query::Q1, Query::Q2] {
            let mut reference = GraphBlasIncremental::new(query, false);
            let mut reference_batch = GraphBlasBatch::new(query, false);
            let mut sharded: Vec<ShardedSolution> = [1usize, 2, 4]
                .iter()
                .map(|&n| ShardedSolution::new(query, ShardBackend::Incremental, n))
                .collect();
            let mut sharded_batch = ShardedSolution::new(query, ShardBackend::Batch, 3);

            let expected = reference.load_and_initial(&network);
            assert_eq!(reference_batch.load_and_initial(&network), expected);
            for s in &mut sharded {
                assert_eq!(s.load_and_initial(&network), expected, "{}", s.name());
            }
            assert_eq!(sharded_batch.load_and_initial(&network), expected);

            for (batch_no, batch) in batches.iter().enumerate() {
                let expected = reference.update_and_reevaluate(batch);
                assert_eq!(reference_batch.update_and_reevaluate(batch), expected);
                for s in &mut sharded {
                    assert_eq!(
                        s.update_and_reevaluate(batch),
                        expected,
                        "{} diverged at {query:?} batch {batch_no}",
                        s.name()
                    );
                }
                assert_eq!(
                    sharded_batch.update_and_reevaluate(batch),
                    expected,
                    "sharded batch backend diverged at {query:?} batch {batch_no}"
                );
            }
        }
    }

    #[test]
    fn sharded_incremental_cc_agrees_on_q2() {
        let network = network(31);
        let batches = retraction_stream(&network, 0xbeef, 8);
        let mut reference = GraphBlasIncrementalCc::new();
        let mut sharded = ShardedSolution::new(Query::Q2, ShardBackend::IncrementalCc, 4);
        assert_eq!(
            sharded.load_and_initial(&network),
            reference.load_and_initial(&network)
        );
        for batch in &batches {
            assert_eq!(
                sharded.update_and_reevaluate(batch),
                reference.update_and_reevaluate(batch)
            );
        }
    }

    #[test]
    fn latencies_and_stats_are_recorded_per_shard() {
        let network = network(37);
        let batches = retraction_stream(&network, 0xaaaa, 5);
        let mut sharded = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 3);
        sharded.load_and_initial(&network);
        for batch in &batches {
            sharded.update_and_reevaluate(batch);
        }
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.per_shard_latencies().len(), 3);
        for lane in sharded.per_shard_latencies() {
            assert_eq!(lane.len(), batches.len());
        }
        let stats = sharded.router_stats();
        assert!(stats.routed_operations > 0);
        let sizes = sharded.shard_sizes();
        assert_eq!(sizes.len(), 3);
        assert!(sizes.iter().map(|&(p, _)| p).sum::<usize>() >= network.posts.len());
    }

    #[test]
    fn ring_partitioned_sharding_agrees_with_unsharded() {
        use datagen::partition::RingPartitioner;
        let network = network(41);
        let batches = retraction_stream(&network, 0x4149, 8);
        for query in [Query::Q1, Query::Q2] {
            let mut reference = GraphBlasIncremental::new(query, false);
            let mut ring = ShardedSolution::with_factory_and_partitioner(
                Box::new(GraphBlasShardFactory::new(query, ShardBackend::Incremental)),
                Box::new(RingPartitioner::new(3, 7)),
            );
            assert_eq!(ring.shard_count(), 3);
            assert_eq!(ring.partitioner_name(), "ring");
            assert_eq!(
                ring.load_and_initial(&network),
                reference.load_and_initial(&network)
            );
            for batch in &batches {
                assert_eq!(
                    ring.update_and_reevaluate(batch),
                    reference.update_and_reevaluate(batch),
                    "{query:?} diverged under the ring partitioner"
                );
            }
        }
    }

    #[test]
    fn migration_moves_a_tree_and_preserves_output() {
        use datagen::partition::{AssignmentTable, ModuloPartitioner};
        let network = network(43);
        let batches = retraction_stream(&network, 0x713e, 6);
        let mut reference = GraphBlasIncremental::new(Query::Q2, false);
        let mut sharded = ShardedSolution::with_factory_and_partitioner(
            Box::new(GraphBlasShardFactory::new(
                Query::Q2,
                ShardBackend::Incremental,
            )),
            Box::new(AssignmentTable::new(Box::new(ModuloPartitioner::new(2)))),
        )
        .with_rebalancing(RebalanceConfig {
            check_every: 0, // manual migrations only
            ..RebalanceConfig::default()
        });
        assert_eq!(
            sharded.load_and_initial(&network),
            reference.load_and_initial(&network)
        );
        // drive a couple of batches, then forcibly migrate every shard-0 tree
        // to shard 1 and keep streaming: outputs must never diverge
        for (batch_no, batch) in batches.iter().enumerate() {
            assert_eq!(
                sharded.update_and_reevaluate(batch),
                reference.update_and_reevaluate(batch),
                "diverged at batch {batch_no}"
            );
            if batch_no == 2 {
                let roots: Vec<ElementId> = network
                    .posts
                    .iter()
                    .filter(|p| p.author % 2 == 0)
                    .map(|p| p.id)
                    .collect();
                assert!(!roots.is_empty(), "shard 0 owns at least one tree");
                for root in roots {
                    sharded.migrate_tree(root, 1).expect("migration succeeds");
                }
                let stats = sharded.rebalance_stats();
                assert!(stats.migrations > 0);
                // shard 0 is now empty of posts; shard 1 owns everything
                let sizes = sharded.shard_sizes();
                assert_eq!(sizes[0].0, 0, "shard 0 still owns posts: {sizes:?}");
                assert_eq!(
                    sizes[1].0,
                    network.posts.len(),
                    "shard 1 must own every post"
                );
            }
        }
    }

    #[test]
    fn migration_errors_are_reported() {
        let network = network(47);
        let mut plain = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 2);
        plain.load_and_initial(&network);
        assert_eq!(
            plain.migrate_tree(network.posts[0].id, 1),
            Err(MigrateError::RebalancingDisabled)
        );

        let mut sharded = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 2)
            .with_rebalancing(RebalanceConfig::default());
        sharded.load_and_initial(&network);
        assert_eq!(
            sharded.migrate_tree(0xdead_beef, 1),
            Err(MigrateError::UnknownRoot(0xdead_beef))
        );
        let root = network.posts[0].id;
        assert_eq!(
            sharded.migrate_tree(root, 9),
            Err(MigrateError::ShardOutOfRange(9))
        );
        let owner = shard_of_user(network.posts[0].author, 2);
        assert_eq!(
            sharded.migrate_tree(root, owner),
            Err(MigrateError::AlreadyOwned(owner))
        );
        assert!(MigrateError::RebalancingDisabled
            .to_string()
            .contains("not enabled"));
    }

    #[test]
    fn skew_monitor_migrates_hot_trees_automatically() {
        let network = network(53);
        // a hot-tree stream: most new comments/likes pile onto one tree
        let batches: Vec<ChangeSet> = UpdateStream::new(
            &network,
            StreamConfig {
                seed: 0x807,
                batch_size: 24,
                deletion_weight: 0.05,
                hot_tree_bias: 0.85,
                ..StreamConfig::default()
            },
        )
        .take(24)
        .collect();
        let mut reference = GraphBlasIncremental::new(Query::Q1, false);
        let mut balanced = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 2)
            .with_rebalancing(RebalanceConfig {
                check_every: 4,
                skew_threshold: 1.2,
                max_migrations_per_check: 2,
            });
        let mut skewed = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 2);
        assert_eq!(
            balanced.load_and_initial(&network),
            reference.load_and_initial(&network)
        );
        skewed.load_and_initial(&network);
        for (batch_no, batch) in batches.iter().enumerate() {
            let expected = reference.update_and_reevaluate(batch);
            assert_eq!(
                balanced.update_and_reevaluate(batch),
                expected,
                "rebalanced run diverged at batch {batch_no}"
            );
            skewed.update_and_reevaluate(batch);
        }
        let stats = balanced.rebalance_stats();
        assert!(stats.checks > 0, "monitor never checked");
        assert!(
            stats.migrations > 0,
            "hot-tree stream must trigger migration"
        );
        // the monitor must leave the shards measurably less skewed than the
        // static partition: compare max/mean of posts + comments
        let skew_of = |sizes: &[(usize, usize)]| {
            let loads: Vec<usize> = sizes.iter().map(|&(p, c)| p + c).collect();
            let max = *loads.iter().max().expect("non-empty") as f64;
            let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
            max / mean
        };
        let balanced_skew = skew_of(&balanced.shard_sizes());
        let skewed_skew = skew_of(&skewed.shard_sizes());
        assert!(
            balanced_skew < skewed_skew,
            "rebalancing must reduce skew: {balanced_skew:.3} vs static {skewed_skew:.3}"
        );
    }

    #[test]
    fn names_identify_backend_and_shard_count() {
        let s = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 4);
        assert_eq!(s.name(), "GraphBLAS Sharded Incremental (4 shards)");
        assert_eq!(s.query(), Query::Q1);
        assert_eq!(
            ShardedSolution::new(Query::Q2, ShardBackend::IncrementalCc, 2).name(),
            "GraphBLAS Sharded Incremental CC (2 shards)"
        );
        // zero shards degrades to one instead of panicking
        assert_eq!(
            ShardedSolution::new(Query::Q1, ShardBackend::Batch, 0).shard_count(),
            1
        );
    }
}
