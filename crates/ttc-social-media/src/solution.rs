//! The `Solution` abstraction used by the benchmark harness, and the four GraphBLAS
//! solution variants evaluated in the paper's Fig. 5 (batch / incremental × 1 thread /
//! 8 threads), plus the future-work incremental-CC variant.
//!
//! Every solution answers **one** query and exposes the two benchmark phases:
//!
//! * *load and initial evaluation* — build internal state from the initial network and
//!   return the first result;
//! * *update and reevaluation* — apply one changeset and return the new result.
//!
//! Results are rendered in the benchmark's `id|id|id` format, so different solutions
//! (including the NMF-style baseline in the `nmf-baseline` crate) can be compared
//! directly.

use datagen::{ChangeSet, SocialNetwork};

use crate::graph::SocialGraph;
use crate::model::Query;
use crate::q1::batch::q1_batch_ranked;
use crate::q1::incremental::Q1Incremental;
use crate::q2::batch::q2_batch_ranked;
use crate::q2::incremental::Q2Incremental;
use crate::q2::incremental_cc::Q2IncrementalCc;
use crate::top_k::format_result;
use crate::update::apply_changeset;

/// Number of results returned by both queries of the case study.
pub const TOP_K: usize = 3;

/// A benchmark solution answering one of the two queries.
pub trait Solution {
    /// Human-readable name, e.g. `"GraphBLAS Incremental (8 threads)"`.
    fn name(&self) -> String;

    /// Which query the solution answers.
    fn query(&self) -> Query;

    /// Load the initial network and return the first query result (`id|id|id`).
    fn load_and_initial(&mut self, network: &SocialNetwork) -> String;

    /// Apply one changeset and return the re-evaluated query result (`id|id|id`).
    fn update_and_reevaluate(&mut self, changeset: &ChangeSet) -> String;

    /// The ranked material the read path freezes into a
    /// [`crate::serve::QueryView`]: the current top-k plus the tracked
    /// candidate pool.
    ///
    /// The default is `None` — solutions without an inspectable candidate
    /// tracker are still servable, but their views carry only the rendered
    /// result string (see `DESIGN.md` §8). [`crate::shard::ShardedSolution`]
    /// overrides this with its merger's global top-k and the union of the
    /// per-shard candidate lists.
    fn candidate_snapshot(&self) -> Option<crate::serve::CandidateSnapshot> {
        None
    }
}

// ---------------------------------------------------------------------------
// GraphBLAS Batch
// ---------------------------------------------------------------------------

/// The "GraphBLAS Batch" variant: every evaluation is a full recomputation.
pub struct GraphBlasBatch {
    query: Query,
    parallel: bool,
    graph: SocialGraph,
}

impl GraphBlasBatch {
    /// Create a batch solution for `query`; `parallel` enables the rayon kernels
    /// (the "8 threads" series of Fig. 5 when run inside an 8-thread pool).
    pub fn new(query: Query, parallel: bool) -> Self {
        GraphBlasBatch {
            query,
            parallel,
            graph: SocialGraph::empty(),
        }
    }

    fn evaluate(&self) -> String {
        match self.query {
            Query::Q1 => format_result(&q1_batch_ranked(&self.graph, self.parallel, TOP_K)),
            Query::Q2 => format_result(&q2_batch_ranked(&self.graph, self.parallel, TOP_K)),
        }
    }
}

impl Solution for GraphBlasBatch {
    fn name(&self) -> String {
        if self.parallel {
            "GraphBLAS Batch (parallel)".to_string()
        } else {
            "GraphBLAS Batch".to_string()
        }
    }

    fn query(&self) -> Query {
        self.query
    }

    fn load_and_initial(&mut self, network: &SocialNetwork) -> String {
        self.graph = SocialGraph::from_network(network);
        self.evaluate()
    }

    fn update_and_reevaluate(&mut self, changeset: &ChangeSet) -> String {
        apply_changeset(&mut self.graph, changeset);
        self.evaluate()
    }
}

// ---------------------------------------------------------------------------
// GraphBLAS Incremental
// ---------------------------------------------------------------------------

enum IncrementalState {
    Q1(Q1Incremental),
    Q2(Q2Incremental),
}

/// The "GraphBLAS Incremental" variant: full evaluation on load, incremental
/// maintenance afterwards (Alg. 2 for Q1, the affected-comments algorithm for Q2).
pub struct GraphBlasIncremental {
    parallel: bool,
    graph: SocialGraph,
    state: IncrementalState,
}

impl GraphBlasIncremental {
    /// Create an incremental solution for `query`; `parallel` enables the rayon
    /// kernels and comment-granular parallelism.
    pub fn new(query: Query, parallel: bool) -> Self {
        let state = match query {
            Query::Q1 => IncrementalState::Q1(Q1Incremental::new(parallel, TOP_K)),
            Query::Q2 => IncrementalState::Q2(Q2Incremental::new(parallel, TOP_K)),
        };
        GraphBlasIncremental {
            parallel,
            graph: SocialGraph::empty(),
            state,
        }
    }
}

impl Solution for GraphBlasIncremental {
    fn name(&self) -> String {
        if self.parallel {
            "GraphBLAS Incremental (parallel)".to_string()
        } else {
            "GraphBLAS Incremental".to_string()
        }
    }

    fn query(&self) -> Query {
        match self.state {
            IncrementalState::Q1(_) => Query::Q1,
            IncrementalState::Q2(_) => Query::Q2,
        }
    }

    fn load_and_initial(&mut self, network: &SocialNetwork) -> String {
        self.graph = SocialGraph::from_network(network);
        match &mut self.state {
            IncrementalState::Q1(q1) => q1.initialize(&self.graph),
            IncrementalState::Q2(q2) => q2.initialize(&self.graph),
        }
    }

    fn update_and_reevaluate(&mut self, changeset: &ChangeSet) -> String {
        let delta = apply_changeset(&mut self.graph, changeset);
        match &mut self.state {
            IncrementalState::Q1(q1) => q1.update(&self.graph, &delta),
            IncrementalState::Q2(q2) => q2.update(&self.graph, &delta),
        }
    }
}

// ---------------------------------------------------------------------------
// GraphBLAS Incremental with incremental connected components (future work)
// ---------------------------------------------------------------------------

/// The future-work Q2 variant: incremental connected components instead of re-running
/// FastSV on the affected comments.
pub struct GraphBlasIncrementalCc {
    graph: SocialGraph,
    state: Q2IncrementalCc,
}

impl GraphBlasIncrementalCc {
    /// Create the incremental-CC Q2 solution.
    pub fn new() -> Self {
        GraphBlasIncrementalCc {
            graph: SocialGraph::empty(),
            state: Q2IncrementalCc::new(TOP_K),
        }
    }
}

impl Default for GraphBlasIncrementalCc {
    fn default() -> Self {
        Self::new()
    }
}

impl Solution for GraphBlasIncrementalCc {
    fn name(&self) -> String {
        "GraphBLAS Incremental (incremental CC)".to_string()
    }

    fn query(&self) -> Query {
        Query::Q2
    }

    fn load_and_initial(&mut self, network: &SocialNetwork) -> String {
        self.graph = SocialGraph::from_network(network);
        self.state.initialize(&self.graph)
    }

    fn update_and_reevaluate(&mut self, changeset: &ChangeSet) -> String {
        let delta = apply_changeset(&mut self.graph, changeset);
        self.state.update(&self.graph, &delta)
    }
}

/// Run a full benchmark scenario (load + every changeset) and collect all results.
/// Convenience used by tests and examples; the timing harness in the `bench` crate
/// measures the phases separately.
pub fn run_solution(solution: &mut dyn Solution, workload: &datagen::Workload) -> Vec<String> {
    let mut results = Vec::with_capacity(1 + workload.changesets.len());
    results.push(solution.load_and_initial(&workload.initial));
    for changeset in &workload.changesets {
        results.push(solution.update_and_reevaluate(changeset));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::GeneratorConfig;

    #[test]
    fn all_graphblas_variants_agree_on_q1() {
        let workload = datagen::generate_workload(&GeneratorConfig::tiny(71));
        let mut batch = GraphBlasBatch::new(Query::Q1, false);
        let mut batch_par = GraphBlasBatch::new(Query::Q1, true);
        let mut incremental = GraphBlasIncremental::new(Query::Q1, false);

        let a = run_solution(&mut batch, &workload);
        let b = run_solution(&mut batch_par, &workload);
        let c = run_solution(&mut incremental, &workload);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.len(), workload.changesets.len() + 1);
    }

    #[test]
    fn all_graphblas_variants_agree_on_q2() {
        let workload = datagen::generate_workload(&GeneratorConfig::tiny(73));
        let mut batch = GraphBlasBatch::new(Query::Q2, false);
        let mut incremental = GraphBlasIncremental::new(Query::Q2, true);
        let mut incremental_cc = GraphBlasIncrementalCc::new();

        let a = run_solution(&mut batch, &workload);
        let b = run_solution(&mut incremental, &workload);
        let c = run_solution(&mut incremental_cc, &workload);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn names_and_queries_are_reported() {
        assert_eq!(
            GraphBlasBatch::new(Query::Q1, false).name(),
            "GraphBLAS Batch"
        );
        assert!(GraphBlasBatch::new(Query::Q1, true)
            .name()
            .contains("parallel"));
        assert_eq!(GraphBlasBatch::new(Query::Q2, false).query(), Query::Q2);
        assert_eq!(
            GraphBlasIncremental::new(Query::Q1, false).query(),
            Query::Q1
        );
        assert_eq!(GraphBlasIncrementalCc::new().query(), Query::Q2);
        assert!(GraphBlasIncremental::new(Query::Q2, true)
            .name()
            .contains("parallel"));
        assert!(GraphBlasIncrementalCc::default()
            .name()
            .contains("incremental CC"));
    }

    #[test]
    fn paper_example_end_to_end() {
        let workload = datagen::Workload {
            initial: crate::graph::paper_example_network(),
            changesets: vec![crate::graph::paper_example_changeset()],
        };
        let mut q1 = GraphBlasIncremental::new(Query::Q1, false);
        assert_eq!(run_solution(&mut q1, &workload), vec!["1|2", "1|2"]);
        let mut q2 = GraphBlasIncremental::new(Query::Q2, false);
        assert_eq!(
            run_solution(&mut q2, &workload),
            vec!["12|11|13", "12|11|14"]
        );
    }
}
