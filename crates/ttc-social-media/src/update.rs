//! Applying a changeset to the matrix representation.
//!
//! The incremental algorithms of the paper consume not only the updated matrices
//! (`RootPost′`, `Likes′`, `Friends′`) but also the *delta* information: the new
//! `rootPost` edges (`∆RootPost`), the per-comment count of newly received likes
//! (`likesCount⁺`), the new friendships (to build the `NewFriends` incidence matrix)
//! and the set of newly inserted comments. [`apply_changeset`] grows the matrices and
//! returns that delta.
//!
//! Streaming workloads additionally retract `likes` and `friends` edges
//! (`RemoveLike` / `RemoveFriendship`); those are applied to the matrices here and
//! surfaced in [`GraphDelta::removed_likes`] / [`GraphDelta::removed_friendships`] so
//! the incremental evaluators can decrement scores (Q1) or re-score affected
//! comments (Q2). Within one changeset the last operation on an edge wins, matching
//! the sequential semantics of the update stream.

use datagen::{ChangeOperation, ChangeSet};
use graphblas::ops_traits::First;
use graphblas::{Index, Matrix, Vector};

use crate::graph::SocialGraph;

/// The delta produced by applying one changeset, expressed in the (grown) dense index
/// spaces of the graph.
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    /// Dense indices of posts inserted by this changeset.
    pub new_posts: Vec<Index>,
    /// Dense indices of comments inserted by this changeset.
    pub new_comments: Vec<Index>,
    /// Dense indices of users inserted by this changeset.
    pub new_users: Vec<Index>,
    /// New `rootPost` edges as `(post, comment)` dense index pairs (`∆RootPost`).
    pub new_root_post_edges: Vec<(Index, Index)>,
    /// New likes as `(comment, user)` dense index pairs.
    pub new_likes: Vec<(Index, Index)>,
    /// New friendships as `(user, user)` dense index pairs (one entry per pair).
    pub new_friendships: Vec<(Index, Index)>,
    /// Retracted likes as `(comment, user)` dense index pairs.
    pub removed_likes: Vec<(Index, Index)>,
    /// Retracted friendships as `(user, user)` dense index pairs (one entry per
    /// pair, in the orientation the edge was originally inserted with).
    pub removed_friendships: Vec<(Index, Index)>,
}

impl GraphDelta {
    /// Whether the changeset contained no effective insertions or retractions.
    pub fn is_empty(&self) -> bool {
        self.new_posts.is_empty()
            && self.new_comments.is_empty()
            && self.new_users.is_empty()
            && self.new_root_post_edges.is_empty()
            && self.new_likes.is_empty()
            && self.new_friendships.is_empty()
            && !self.has_removals()
    }

    /// Whether the changeset retracted any edge. Retractions can *decrease* scores,
    /// which the incremental evaluators handle by rebuilding their top-k candidate
    /// pool from the maintained score vector (merging alone is only exact for the
    /// insert-only monotone case).
    pub fn has_removals(&self) -> bool {
        !self.removed_likes.is_empty() || !self.removed_friendships.is_empty()
    }

    /// `∆RootPost`: the new `rootPost` edges as a `posts′ × comments′` matrix.
    pub fn delta_root_post(&self, graph: &SocialGraph) -> Matrix<u64> {
        let tuples: Vec<(Index, Index, u64)> = self
            .new_root_post_edges
            .iter()
            .map(|&(p, c)| (p, c, 1))
            .collect();
        Matrix::from_tuples(
            graph.post_count(),
            graph.comment_count(),
            &tuples,
            First::new(),
        )
        .expect("delta indices lie within the grown dimensions") // lint: allow(panic) — the matrices were grown to the delta dimensions above
    }

    /// `likesCount⁺`: per-comment count of likes received in this changeset, as a
    /// sparse vector over the grown comment index space.
    pub fn new_likes_count(&self, graph: &SocialGraph) -> Vector<u64> {
        let tuples: Vec<(Index, u64)> = self.new_likes.iter().map(|&(c, _)| (c, 1)).collect();
        Vector::from_tuples(
            graph.comment_count(),
            &tuples,
            graphblas::ops_traits::Plus::new(),
        )
        .expect("delta indices lie within the grown dimensions") // lint: allow(panic) — the matrices were grown to the delta dimensions above
    }

    /// The `NewFriends` incidence matrix: `users′ × |new friendships|`, with the two
    /// endpoints of friendship `k` marked in column `k` (Fig. 4b, step 1).
    pub fn new_friends_incidence(&self, graph: &SocialGraph) -> Matrix<u64> {
        friends_incidence(graph, &self.new_friendships)
    }

    /// `likesCount⁻`: per-comment count of likes retracted by this changeset, as a
    /// sparse vector over the comment index space (the retraction analogue of
    /// [`GraphDelta::new_likes_count`]).
    pub fn removed_likes_count(&self, graph: &SocialGraph) -> Vector<u64> {
        let tuples: Vec<(Index, u64)> = self.removed_likes.iter().map(|&(c, _)| (c, 1)).collect();
        Vector::from_tuples(
            graph.comment_count(),
            &tuples,
            graphblas::ops_traits::Plus::new(),
        )
        .expect("delta indices lie within the grown dimensions") // lint: allow(panic) — the matrices were grown to the delta dimensions above
    }

    /// The incidence matrix of the *retracted* friendships, shaped like
    /// [`GraphDelta::new_friends_incidence`]. A comment is affected by a retraction
    /// exactly when both former endpoints like it — the same both-endpoints
    /// detection of Fig. 4b applies, because the `Likes` matrix is unchanged by a
    /// friendship removal.
    pub fn removed_friends_incidence(&self, graph: &SocialGraph) -> Matrix<u64> {
        friends_incidence(graph, &self.removed_friendships)
    }
}

/// Build a `users × |pairs|` incidence matrix with the two endpoints of pair `k`
/// marked in column `k`.
fn friends_incidence(graph: &SocialGraph, pairs: &[(Index, Index)]) -> Matrix<u64> {
    let mut tuples: Vec<(Index, Index, u64)> = Vec::with_capacity(pairs.len() * 2);
    for (k, &(a, b)) in pairs.iter().enumerate() {
        tuples.push((a, k, 1));
        tuples.push((b, k, 1));
    }
    Matrix::from_tuples(graph.user_count(), pairs.len(), &tuples, First::new())
        .expect("delta indices lie within the grown dimensions") // lint: allow(panic) — the matrices were grown to the delta dimensions above
}

/// Apply a changeset to the graph: register new elements, grow every matrix to the new
/// dimensions, insert the new edges, and return the delta needed by the incremental
/// algorithms.
pub fn apply_changeset(graph: &mut SocialGraph, changeset: &ChangeSet) -> GraphDelta {
    let mut delta = GraphDelta::default();

    // Pass 1: register new nodes so that every matrix can be grown once up front.
    for op in &changeset.operations {
        match op {
            ChangeOperation::AddUser { user } => {
                if !graph.users.contains(user.id) {
                    let idx = graph.users.get_or_insert(user.id);
                    delta.new_users.push(idx);
                }
            }
            ChangeOperation::AddPost { post } => {
                if !graph.posts.contains(post.id) {
                    let idx = graph.posts.get_or_insert(post.id);
                    graph.post_timestamps.push(post.timestamp);
                    delta.new_posts.push(idx);
                }
            }
            ChangeOperation::AddComment { comment } => {
                if !graph.comments.contains(comment.id) {
                    let idx = graph.comments.get_or_insert(comment.id);
                    graph.comment_timestamps.push(comment.timestamp);
                    delta.new_comments.push(idx);
                }
                // the author may be a user we have never seen (defensive: the TTC data
                // always inserts users before use, but the loader tolerates it)
                if !graph.users.contains(comment.author) {
                    let idx = graph.users.get_or_insert(comment.author);
                    delta.new_users.push(idx);
                }
            }
            ChangeOperation::AddFriendship { a, b } => {
                for id in [a, b] {
                    if !graph.users.contains(*id) {
                        let idx = graph.users.get_or_insert(*id);
                        delta.new_users.push(idx);
                    }
                }
            }
            ChangeOperation::AddLike { user, .. } => {
                if !graph.users.contains(*user) {
                    let idx = graph.users.get_or_insert(*user);
                    delta.new_users.push(idx);
                }
            }
            // retractions never introduce nodes
            ChangeOperation::RemoveLike { .. } | ChangeOperation::RemoveFriendship { .. } => {}
        }
    }

    // Grow the matrices to the new dimensions (growth only; the workload never
    // deletes).
    let np = graph.post_count();
    let nc = graph.comment_count();
    let nu = graph.user_count();
    graph.root_post.resize(np, nc);
    graph.likes.resize(nc, nu);
    graph.friends.resize(nu, nu);
    graph.commented.resize(nc, nc);

    // Pass 2: collect the edge updates. For likes and friendships the last operation
    // on an edge within the changeset wins (an Add cancels a pending Remove of the
    // same edge and vice versa), which reproduces the sequential semantics of
    // applying the operations one at a time.
    let mut root_post_inserts: Vec<(Index, Index, u64)> = Vec::new();
    let mut commented_inserts: Vec<(Index, Index, u64)> = Vec::new();
    let mut likes_inserts: Vec<(Index, Index, u64)> = Vec::new();
    let mut friends_inserts: Vec<(Index, Index, u64)> = Vec::new();
    let mut likes_removals: Vec<(Index, Index)> = Vec::new();
    let mut friends_removals: Vec<(Index, Index)> = Vec::new();

    for op in &changeset.operations {
        match op {
            ChangeOperation::AddComment { comment } => {
                let c = graph
                    .comments
                    .index_of(comment.id)
                    .expect("registered in pass 1"); // lint: allow(panic) — pass 1 registered every id this pass resolves
                if let Some(p) = graph.posts.index_of(comment.root_post) {
                    root_post_inserts.push((p, c, 1));
                    delta.new_root_post_edges.push((p, c));
                }
                if let Some(parent_c) = graph.comments.index_of(comment.parent) {
                    if parent_c != c {
                        commented_inserts.push((c, parent_c, 1));
                    }
                }
            }
            ChangeOperation::AddLike { user, comment } => {
                if let (Some(c), Some(u)) = (
                    graph.comments.index_of(*comment),
                    graph.users.index_of(*user),
                ) {
                    let pending_removal = likes_removals
                        .iter()
                        .position(|&(cc, uu)| (cc, uu) == (c, u));
                    if let Some(pos) = pending_removal {
                        // Remove followed by Add: net effect is presence; the edge
                        // already exists in the matrix, so drop both operations.
                        likes_removals.swap_remove(pos);
                        delta.removed_likes.retain(|&(cc, uu)| (cc, uu) != (c, u));
                    } else if graph.likes.get(c, u).is_none()
                        && !likes_inserts.iter().any(|&(cc, uu, _)| cc == c && uu == u)
                    {
                        likes_inserts.push((c, u, 1));
                        delta.new_likes.push((c, u));
                    }
                }
            }
            ChangeOperation::AddFriendship { a, b } => {
                if let (Some(ia), Some(ib)) = (graph.users.index_of(*a), graph.users.index_of(*b)) {
                    let pending_removal = friends_removals
                        .iter()
                        .position(|&(x, y)| (x, y) == (ia, ib) || (x, y) == (ib, ia));
                    if ia == ib {
                        // self-loops are never stored
                    } else if let Some(pos) = pending_removal {
                        friends_removals.swap_remove(pos);
                        delta
                            .removed_friendships
                            .retain(|&(x, y)| (x, y) != (ia, ib) && (x, y) != (ib, ia));
                    } else if graph.friends.get(ia, ib).is_none()
                        && !friends_inserts
                            .iter()
                            .any(|&(x, y, _)| (x, y) == (ia, ib) || (x, y) == (ib, ia))
                    {
                        friends_inserts.push((ia, ib, 1));
                        friends_inserts.push((ib, ia, 1));
                        delta.new_friendships.push((ia, ib));
                    }
                }
            }
            ChangeOperation::RemoveLike { user, comment } => {
                if let (Some(c), Some(u)) = (
                    graph.comments.index_of(*comment),
                    graph.users.index_of(*user),
                ) {
                    let pending_insert = likes_inserts
                        .iter()
                        .position(|&(cc, uu, _)| (cc, uu) == (c, u));
                    if let Some(pos) = pending_insert {
                        // Add followed by Remove within the changeset: net no-op.
                        likes_inserts.swap_remove(pos);
                        delta.new_likes.retain(|&(cc, uu)| (cc, uu) != (c, u));
                    } else if graph.likes.get(c, u).is_some() && !likes_removals.contains(&(c, u)) {
                        likes_removals.push((c, u));
                        delta.removed_likes.push((c, u));
                    }
                }
            }
            ChangeOperation::RemoveFriendship { a, b } => {
                if let (Some(ia), Some(ib)) = (graph.users.index_of(*a), graph.users.index_of(*b)) {
                    let pending_insert = friends_inserts
                        .iter()
                        .position(|&(x, y, _)| (x, y) == (ia, ib) || (x, y) == (ib, ia));
                    if let Some(pos) = pending_insert {
                        // both orientations were queued; drop them and the delta entry
                        friends_inserts.swap_remove(pos);
                        let more = friends_inserts
                            .iter()
                            .position(|&(x, y, _)| (x, y) == (ia, ib) || (x, y) == (ib, ia));
                        if let Some(pos) = more {
                            friends_inserts.swap_remove(pos);
                        }
                        delta
                            .new_friendships
                            .retain(|&(x, y)| (x, y) != (ia, ib) && (x, y) != (ib, ia));
                    } else if graph.friends.get(ia, ib).is_some()
                        && !friends_removals
                            .iter()
                            .any(|&(x, y)| (x, y) == (ia, ib) || (x, y) == (ib, ia))
                    {
                        friends_removals.push((ia, ib));
                        delta.removed_friendships.push((ia, ib));
                    }
                }
            }
            ChangeOperation::AddUser { .. } | ChangeOperation::AddPost { .. } => {}
        }
    }

    graph
        .root_post
        .insert_tuples(&root_post_inserts, First::new())
        .expect("root_post inserts within bounds"); // lint: allow(panic) — the matrix was grown to cover all inserts above
    graph
        .commented
        .insert_tuples(&commented_inserts, First::new())
        .expect("commented inserts within bounds"); // lint: allow(panic) — the matrix was grown to cover all inserts above
    graph
        .likes
        .insert_tuples(&likes_inserts, First::new())
        .expect("likes inserts within bounds"); // lint: allow(panic) — the matrix was grown to cover all inserts above
    graph
        .friends
        .insert_tuples(&friends_inserts, First::new())
        .expect("friends inserts within bounds"); // lint: allow(panic) — the matrix was grown to cover all inserts above
    for &(c, u) in &likes_removals {
        graph.likes.remove(c, u);
    }
    for &(a, b) in &friends_removals {
        graph.friends.remove(a, b);
        graph.friends.remove(b, a);
    }

    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network, SocialGraph};

    #[test]
    fn paper_update_grows_the_graph() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let delta = apply_changeset(&mut g, &paper_example_changeset());
        g.check_consistency().unwrap();

        assert_eq!(g.post_count(), 2);
        assert_eq!(g.comment_count(), 4);
        assert_eq!(g.user_count(), 4);
        assert_eq!(delta.new_comments.len(), 1);
        assert_eq!(delta.new_posts.len(), 0);
        assert_eq!(delta.new_users.len(), 0);
        assert_eq!(delta.new_likes.len(), 2); // u2→c2 and u4→c4
        assert_eq!(delta.new_friendships.len(), 1); // u1–u4
        assert_eq!(delta.new_root_post_edges.len(), 1); // c4 → p1
        assert!(!delta.is_empty());
    }

    #[test]
    fn delta_matrices_have_grown_dimensions() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let delta = apply_changeset(&mut g, &paper_example_changeset());

        let d_root = delta.delta_root_post(&g);
        assert_eq!(d_root.nrows(), 2);
        assert_eq!(d_root.ncols(), 4);
        assert_eq!(d_root.nvals(), 1);

        let likes_plus = delta.new_likes_count(&g);
        assert_eq!(likes_plus.size(), 4);
        let c2 = g.comments.index_of(12).unwrap();
        let c4 = g.comments.index_of(14).unwrap();
        assert_eq!(likes_plus.get(c2), Some(1));
        assert_eq!(likes_plus.get(c4), Some(1));

        let incidence = delta.new_friends_incidence(&g);
        assert_eq!(incidence.nrows(), 4);
        assert_eq!(incidence.ncols(), 1);
        assert_eq!(incidence.nvals(), 2);
    }

    #[test]
    fn duplicate_inserts_are_ignored() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let cs = datagen::ChangeSet {
            operations: vec![
                // u1–u2 are already friends in the initial graph
                datagen::ChangeOperation::AddFriendship { a: 101, b: 102 },
                // u3 already likes c1
                datagen::ChangeOperation::AddLike {
                    user: 103,
                    comment: 11,
                },
                // the same like twice within the changeset
                datagen::ChangeOperation::AddLike {
                    user: 101,
                    comment: 11,
                },
                datagen::ChangeOperation::AddLike {
                    user: 101,
                    comment: 11,
                },
            ],
        };
        let before_friends = g.friends.nvals();
        let before_likes = g.likes.nvals();
        let delta = apply_changeset(&mut g, &cs);
        assert_eq!(delta.new_friendships.len(), 0);
        assert_eq!(delta.new_likes.len(), 1);
        assert_eq!(g.friends.nvals(), before_friends);
        assert_eq!(g.likes.nvals(), before_likes + 1);
    }

    #[test]
    fn empty_changeset_produces_empty_delta() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let delta = apply_changeset(&mut g, &datagen::ChangeSet::default());
        assert!(delta.is_empty());
        assert_eq!(delta.delta_root_post(&g).nvals(), 0);
        assert_eq!(delta.new_likes_count(&g).nvals(), 0);
        assert_eq!(delta.new_friends_incidence(&g).ncols(), 0);
    }

    #[test]
    fn new_users_and_posts_are_registered() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let cs = datagen::ChangeSet {
            operations: vec![
                datagen::ChangeOperation::AddUser {
                    user: datagen::User {
                        id: 105,
                        name: "u5".into(),
                    },
                },
                datagen::ChangeOperation::AddPost {
                    post: datagen::Post {
                        id: 3,
                        timestamp: 40,
                        author: 105,
                    },
                },
                datagen::ChangeOperation::AddComment {
                    comment: datagen::Comment {
                        id: 15,
                        timestamp: 41,
                        author: 105,
                        parent: 3,
                        root_post: 3,
                    },
                },
                datagen::ChangeOperation::AddLike {
                    user: 105,
                    comment: 15,
                },
            ],
        };
        let delta = apply_changeset(&mut g, &cs);
        g.check_consistency().unwrap();
        assert_eq!(g.post_count(), 3);
        assert_eq!(g.user_count(), 5);
        assert_eq!(delta.new_posts.len(), 1);
        assert_eq!(delta.new_users.len(), 1);
        let p3 = g.posts.index_of(3).unwrap();
        let c15 = g.comments.index_of(15).unwrap();
        assert_eq!(g.root_post.get(p3, c15), Some(1));
    }

    #[test]
    fn remove_like_and_friendship_update_matrices_and_delta() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let cs = datagen::ChangeSet {
            operations: vec![
                // u3 likes c1 initially; u1–u2 are friends initially
                datagen::ChangeOperation::RemoveLike {
                    user: 103,
                    comment: 11,
                },
                datagen::ChangeOperation::RemoveFriendship { a: 102, b: 101 },
            ],
        };
        let before_likes = g.likes.nvals();
        let before_friends = g.friends.nvals();
        let delta = apply_changeset(&mut g, &cs);
        g.check_consistency().unwrap();

        let c1 = g.comments.index_of(11).unwrap();
        let u3 = g.users.index_of(103).unwrap();
        assert_eq!(g.likes.get(c1, u3), None);
        assert_eq!(g.likes.nvals(), before_likes - 1);

        let u1 = g.users.index_of(101).unwrap();
        let u2 = g.users.index_of(102).unwrap();
        assert_eq!(g.friends.get(u1, u2), None);
        assert_eq!(g.friends.get(u2, u1), None);
        assert_eq!(g.friends.nvals(), before_friends - 2);

        assert_eq!(delta.removed_likes, vec![(c1, u3)]);
        assert_eq!(delta.removed_friendships.len(), 1);
        assert!(delta.has_removals());
        assert!(!delta.is_empty());
        assert_eq!(delta.removed_likes_count(&g).get(c1), Some(1));
        assert_eq!(delta.removed_friends_incidence(&g).nvals(), 2);
    }

    #[test]
    fn removing_absent_edges_is_a_noop() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let cs = datagen::ChangeSet {
            operations: vec![
                // u1 does not like c1; u1–u3 are not friends; user 999 is unknown
                datagen::ChangeOperation::RemoveLike {
                    user: 101,
                    comment: 11,
                },
                datagen::ChangeOperation::RemoveFriendship { a: 101, b: 103 },
                datagen::ChangeOperation::RemoveLike {
                    user: 999,
                    comment: 11,
                },
            ],
        };
        let delta = apply_changeset(&mut g, &cs);
        assert!(delta.is_empty());
        assert!(!delta.has_removals());
        g.check_consistency().unwrap();
    }

    #[test]
    fn last_operation_on_an_edge_wins_within_a_changeset() {
        // Add then Remove of a fresh edge: net no-op.
        let mut g = SocialGraph::from_network(&paper_example_network());
        let add_then_remove = datagen::ChangeSet {
            operations: vec![
                datagen::ChangeOperation::AddLike {
                    user: 101,
                    comment: 11,
                },
                datagen::ChangeOperation::RemoveLike {
                    user: 101,
                    comment: 11,
                },
                datagen::ChangeOperation::AddFriendship { a: 101, b: 103 },
                datagen::ChangeOperation::RemoveFriendship { a: 103, b: 101 },
            ],
        };
        let before_likes = g.likes.nvals();
        let before_friends = g.friends.nvals();
        let delta = apply_changeset(&mut g, &add_then_remove);
        assert!(delta.is_empty(), "add+remove must cancel: {delta:?}");
        assert_eq!(g.likes.nvals(), before_likes);
        assert_eq!(g.friends.nvals(), before_friends);

        // Remove then Add of an existing edge: net presence, no delta entries.
        let remove_then_add = datagen::ChangeSet {
            operations: vec![
                // u3 likes c1 initially
                datagen::ChangeOperation::RemoveLike {
                    user: 103,
                    comment: 11,
                },
                datagen::ChangeOperation::AddLike {
                    user: 103,
                    comment: 11,
                },
            ],
        };
        let delta = apply_changeset(&mut g, &remove_then_add);
        assert!(
            delta.is_empty(),
            "remove+add of an existing edge: {delta:?}"
        );
        let c1 = g.comments.index_of(11).unwrap();
        let u3 = g.users.index_of(103).unwrap();
        assert_eq!(g.likes.get(c1, u3), Some(1));
    }

    #[test]
    fn matrices_resized_before_edge_insertion() {
        // a changeset whose new like targets a new comment: requires the likes matrix
        // to have grown before the edge is inserted
        let mut g = SocialGraph::from_network(&paper_example_network());
        let cs = paper_example_changeset();
        apply_changeset(&mut g, &cs);
        let c4 = g.comments.index_of(14).unwrap();
        let u4 = g.users.index_of(104).unwrap();
        assert_eq!(g.likes.get(c4, u4), Some(1));
    }
}
