//! Synchronization facade for the concurrency-critical modules.
//!
//! [`crate::pipeline`], [`crate::recovery`] and [`crate::serve`] take every
//! synchronization primitive — `Mutex`, `OnceLock`, mpsc channels,
//! `thread::spawn`/`sleep`, panic containment — from this module instead of
//! `std` directly. In a normal
//! build the facade is a set of zero-cost `pub use` re-exports of the `std`
//! items, so production code is byte-for-byte what it was before the facade
//! existed. With the `model-check` feature the same paths resolve to the
//! `loomette` shadow primitives, whose deterministic scheduler lets
//! `tests/model_check.rs` exhaustively explore bounded interleavings of the
//! whole supervisor → worker-generations → dedup-merge → respawn protocol.
//!
//! The facade deliberately exposes only what those modules use; growing it is
//! a conscious act (the new primitive must behave identically in both modes).
//!
//! `Arc` is re-exported from `std` in both modes: reference counting carries
//! no scheduling decisions, so the model does not need to shadow it.

pub use std::sync::Arc;

#[cfg(not(feature = "model-check"))]
mod imp {
    pub use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

    /// Multi-producer single-consumer channels (std in this build).
    pub mod mpsc {
        pub use std::sync::mpsc::{
            channel, sync_channel, Receiver, RecvError, SendError, Sender, SyncSender,
            TryRecvError, TrySendError,
        };
    }

    /// Threading primitives (std in this build).
    pub mod thread {
        pub use std::thread::{sleep, spawn, yield_now, JoinHandle};
    }

    /// Panic containment (std in this build).
    pub mod panic {
        pub use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    }
}

#[cfg(feature = "model-check")]
mod imp {
    pub use loomette::sync::{Condvar, Mutex, MutexGuard, OnceLock};

    /// Multi-producer single-consumer channels (loomette shadows in this build).
    pub mod mpsc {
        pub use loomette::sync::mpsc::{
            channel, sync_channel, Receiver, RecvError, SendError, Sender, SyncSender,
            TryRecvError, TrySendError,
        };
    }

    /// Threading primitives (loomette shadows in this build).
    pub mod thread {
        pub use loomette::thread::{sleep, spawn, yield_now, JoinHandle};
    }

    /// Panic containment (loomette's sentinel-aware `catch_unwind` in this build).
    pub mod panic {
        pub use loomette::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    }
}

pub use imp::*;
