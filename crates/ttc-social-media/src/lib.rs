//! # ttc-social-media — incremental GraphBLAS solution for the TTC 2018 Social Media case study
//!
//! This crate is the Rust reproduction of the paper's primary contribution: batch and
//! incremental, serial and parallel GraphBLAS solutions for the two queries of the
//! TTC 2018 "Social Media" case study.
//!
//! * **Q1 — influential posts** ([`q1`]): `10 ×` the number of (direct or indirect)
//!   comments of a post plus the number of likes those comments received; top 3 posts.
//!   Batch evaluation follows Alg. 1 of the paper; incremental maintenance follows
//!   Alg. 2.
//! * **Q2 — influential comments** ([`q2`]): the sum of squared connected-component
//!   sizes of the friendship subgraph induced by the users liking a comment; top 3
//!   comments. Batch evaluation extracts the induced subgraph per comment and runs
//!   FastSV; incremental maintenance re-scores only the comments affected by the
//!   changeset (detected with the `NewFriends` incidence-matrix trick of Fig. 4b), and
//!   an additional variant implements the paper's future-work item of a fully
//!   incremental connected-components backend.
//!
//! The [`solution`] module packages these algorithms behind the [`solution::Solution`]
//! trait used by the benchmark harness, matching the tool variants of the paper's
//! Fig. 5. Beyond the paper, the [`stream`] module drives *unbounded* micro-batch
//! update streams (including like/friendship retractions) through any solution and
//! reports sustained throughput with latency percentiles.
//!
//! ## Quickstart
//!
//! ```
//! use ttc_social_media::graph::{paper_example_network, paper_example_changeset};
//! use ttc_social_media::model::Query;
//! use ttc_social_media::solution::{GraphBlasIncremental, Solution};
//!
//! let mut q2 = GraphBlasIncremental::new(Query::Q2, false);
//! let initial = q2.load_and_initial(&paper_example_network());
//! assert_eq!(initial, "12|11|13");
//! let updated = q2.update_and_reevaluate(&paper_example_changeset());
//! assert_eq!(updated, "12|11|14");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod loader;
pub mod model;
pub mod pipeline;
pub mod q1;
pub mod q2;
pub mod recovery;
pub mod serve;
pub mod shard;
pub mod solution;
pub mod stream;
pub mod sync;
pub mod top_k;
pub mod update;

pub use graph::SocialGraph;
pub use model::{IdMap, Query};
pub use pipeline::{
    DelayInjection, EngineError, EngineReport, IngestEngine, PipelineConfig, PipelineStats,
    PipelinedEngine, SyncEngine,
};
pub use recovery::{
    ChangesetLog, CheckpointError, CheckpointStore, LogEntry, RecoveryConfig, RecoveryStats,
    ShardCheckpoint,
};
pub use serve::{
    view_channel, CandidateSnapshot, QueryView, Standing, UserComponents, ViewBuilder,
    ViewPublisher, ViewReader,
};
pub use shard::{
    GraphBlasShardFactory, MigrateError, RebalanceConfig, RebalanceStats, ShardBackend,
    ShardEvaluator, ShardFactory, ShardMerger, ShardRouter, ShardRouterStats, ShardedSolution,
};
pub use solution::{GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc, Solution, TOP_K};
pub use stream::{RunObserver, StreamDriver, StreamDriverConfig, StreamReport};
pub use top_k::{format_result, RankedEntry, TopKTracker};
pub use update::{apply_changeset, GraphDelta};
