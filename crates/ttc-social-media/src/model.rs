//! Id registries: mapping between the external element ids of the social network and
//! the dense matrix indices used by the GraphBLAS representation.
//!
//! The case-study data identifies users, posts and comments by sparse 64-bit ids; the
//! GraphBLAS matrices need dense 0-based row/column indices per node type. An
//! [`IdMap`] maintains the bijection and grows monotonically as changesets introduce
//! new elements (indices are never reused, matching the "insert-only" workload).

use std::collections::HashMap;

use datagen::ElementId;
use graphblas::Index;

/// A growable bijection between external element ids and dense indices `0..len`.
#[derive(Clone, Debug, Default)]
pub struct IdMap {
    forward: HashMap<ElementId, Index>,
    backward: Vec<ElementId>,
}

impl IdMap {
    /// Create an empty map.
    pub fn new() -> Self {
        IdMap::default()
    }

    /// Number of registered ids (also the dimension of the corresponding matrix axis).
    pub fn len(&self) -> usize {
        self.backward.len()
    }

    /// Whether no ids are registered.
    pub fn is_empty(&self) -> bool {
        self.backward.is_empty()
    }

    /// Register `id` if new and return its dense index.
    pub fn get_or_insert(&mut self, id: ElementId) -> Index {
        if let Some(&idx) = self.forward.get(&id) {
            return idx;
        }
        let idx = self.backward.len();
        self.forward.insert(id, idx);
        self.backward.push(id);
        idx
    }

    /// Dense index of `id`, if registered.
    pub fn index_of(&self, id: ElementId) -> Option<Index> {
        self.forward.get(&id).copied()
    }

    /// External id stored at dense index `index`.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    pub fn id_of(&self, index: Index) -> ElementId {
        self.backward[index]
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: ElementId) -> bool {
        self.forward.contains_key(&id)
    }

    /// Iterate `(index, id)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, ElementId)> + '_ {
        self.backward.iter().copied().enumerate()
    }
}

/// Identifies which of the two case-study queries a solution answers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// Q1: influential posts.
    Q1,
    /// Q2: influential comments.
    Q2,
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Query::Q1 => write!(f, "Q1"),
            Query::Q2 => write!(f, "Q2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_insert_assigns_sequential_indices() {
        let mut map = IdMap::new();
        assert_eq!(map.get_or_insert(100), 0);
        assert_eq!(map.get_or_insert(7), 1);
        assert_eq!(map.get_or_insert(100), 0); // idempotent
        assert_eq!(map.len(), 2);
        assert!(!map.is_empty());
    }

    #[test]
    fn lookups_work_both_directions() {
        let mut map = IdMap::new();
        map.get_or_insert(55);
        map.get_or_insert(66);
        assert_eq!(map.index_of(55), Some(0));
        assert_eq!(map.index_of(66), Some(1));
        assert_eq!(map.index_of(77), None);
        assert_eq!(map.id_of(0), 55);
        assert_eq!(map.id_of(1), 66);
        assert!(map.contains(55));
        assert!(!map.contains(77));
    }

    #[test]
    fn iter_returns_pairs_in_index_order() {
        let mut map = IdMap::new();
        map.get_or_insert(9);
        map.get_or_insert(3);
        map.get_or_insert(5);
        let pairs: Vec<(usize, u64)> = map.iter().collect();
        assert_eq!(pairs, vec![(0, 9), (1, 3), (2, 5)]);
    }

    #[test]
    fn empty_map() {
        let map = IdMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.index_of(1), None);
    }

    #[test]
    fn query_display() {
        assert_eq!(Query::Q1.to_string(), "Q1");
        assert_eq!(Query::Q2.to_string(), "Q2");
    }
}
