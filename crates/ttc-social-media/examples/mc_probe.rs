//! Measures the model checker's exploration size and wall time for one
//! schedule at a given preemption bound — the tool used to size the budgets
//! in `tests/model_check.rs`. Run with
//! `cargo run --release --features model-check --example mc_probe -- <bound|none> <max_executions> [kill11|kill2x|replay]`.
fn main() {
    #[cfg(feature = "model-check")]
    probe::run();
}

#[cfg(feature = "model-check")]
mod probe {
    include!("../tests/model_check/harness.rs");

    pub fn run() {
        let args: Vec<String> = std::env::args().collect();
        let bound: Option<usize> = args.get(1).and_then(|s| s.parse().ok());
        let max_exec: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50_000);
        let kills: Vec<(usize, u64)> = match args.get(3).map(|s| s.as_str()) {
            Some("kill11") => vec![(1, 1)],
            Some("kill2x") => vec![(0, 1), (1, 1)],
            Some("replay") => vec![(1, 1), (1, 2)],
            _ => vec![],
        };
        let batches = if kills == [(1, 1), (1, 2)] { 4 } else { 3 };
        let network = toy_network();
        let batch_list = toy_batches(batches);
        let expected = reference_results(&network, &batch_list);
        let config = pipeline_config(kills, 2);
        let cfg = loomette::Config {
            max_preemptions: bound,
            max_executions: max_exec,
            ..loomette::Config::default()
        };
        let start = std::time::Instant::now();
        let report = loomette::explore(cfg, || {
            check_pipeline_run(&network, &batch_list, &expected, &config)
        });
        println!(
            "bound={bound:?} max_exec={max_exec}: {report} in {:.1}s",
            start.elapsed().as_secs_f64()
        );
        if let Some(v) = &report.violation {
            println!("VIOLATION: {v}");
        }
    }
}
