//! Unbounded, seeded update streams for sustained-throughput experiments.
//!
//! The paper replays a *finite* list of changesets (Table II's `#inserts` column) —
//! enough to measure one update-and-reevaluate phase, but not the continuous heavy
//! update traffic a production deployment would see. [`UpdateStream`] closes that
//! gap: it is an infinite [`Iterator`] of micro-batch [`ChangeSet`]s drawn from the
//! same Zipf-skewed popularity model as the initial-network generator
//! ([`crate::generator`]), so popular users keep commenting and popular comments
//! keep attracting likes, exactly as in the bulk workload.
//!
//! Each micro-batch mixes four operation kinds, with configurable weights
//! ([`StreamConfig`]):
//!
//! * new comments (replying to an existing submission, following the comment tree
//!   shape of the bulk generator),
//! * new likes on existing comments,
//! * new friendships,
//! * **retractions** of existing likes and friendships (`RemoveLike` /
//!   `RemoveFriendship`) — the piece the TTC workload lacks and the streaming
//!   drivers exercise.
//!
//! The stream tracks the evolving edge sets, so every emitted operation is valid at
//! the moment it is applied: likes are only added where absent and only removed
//! where present, friendships likewise, and comment parents always exist. All
//! randomness flows from [`StreamConfig::seed`], so a `(network, config)` pair
//! always produces the same stream — the property the differential
//! streamed-vs-bulk tests rely on.
//!
//! # Example
//!
//! ```
//! use datagen::{generate_workload, GeneratorConfig};
//! use datagen::stream::{StreamConfig, UpdateStream};
//!
//! let workload = generate_workload(&GeneratorConfig::tiny(7));
//! let config = StreamConfig { seed: 42, batch_size: 8, ..StreamConfig::default() };
//! let batches: Vec<_> = UpdateStream::new(&workload.initial, config).take(3).collect();
//! assert_eq!(batches.len(), 3);
//! assert!(batches.iter().all(|b| !b.operations.is_empty()));
//! ```

use std::collections::{HashMap, HashSet};

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::model::{ChangeOperation, ChangeSet, Comment, ElementId, SocialNetwork};
use crate::sampler::{sample_distinct_pair, ZipfSampler};

/// The **modulo** partition function of the sharded pipeline: the shard owning a
/// user id under `user % shards`. Submissions are owned by the shard of their
/// **root post's author**, so a whole discussion tree (the unit both queries
/// score) lives on one shard.
///
/// This used to be the only policy; it is now the default implementation behind
/// the pluggable [`crate::partition::Partitioner`] abstraction
/// ([`crate::partition::ModuloPartitioner`] wraps this function). Ownership
/// decisions go through an injected policy value; the shard-aware emission
/// grouping below still keys on this function because grouping is a locality
/// hint — proven semantics-preserving for any consumer — not an ownership
/// decision.
pub fn shard_of_user(user: ElementId, shards: usize) -> usize {
    (user % shards.max(1) as ElementId) as usize
}

/// One micro-batch paired with its position in the stream.
///
/// Sequence numbers are the currency of the staged ingestion pipeline: per-shard
/// apply workers may finish batches out of order, and the watermark merger only
/// emits the global result for batch `t` once every shard's watermark has passed
/// `t`. Stamping the number at *emission* time (rather than wherever the batch
/// happens to be observed) pins down the replay order even after batches have
/// been buffered, reordered across queues, or dropped by a consumer.
#[derive(Clone, Debug, PartialEq)]
pub struct SequencedBatch {
    /// Zero-based position of this batch in the stream.
    pub seq: u64,
    /// The batch itself.
    pub batch: ChangeSet,
}

/// Iterator adapter stamping consecutive sequence numbers (from 0) onto the
/// micro-batches of any changeset stream. Obtained via [`sequenced`] or
/// [`UpdateStream::sequenced`].
#[derive(Clone, Debug)]
pub struct Sequenced<I> {
    inner: I,
    next_seq: u64,
}

impl<I: Iterator<Item = ChangeSet>> Iterator for Sequenced<I> {
    type Item = SequencedBatch;

    fn next(&mut self) -> Option<SequencedBatch> {
        let batch = self.inner.next()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(SequencedBatch { seq, batch })
    }
}

/// Stamp sequence numbers onto an arbitrary micro-batch stream.
pub fn sequenced<I: Iterator<Item = ChangeSet>>(inner: I) -> Sequenced<I> {
    Sequenced { inner, next_seq: 0 }
}

/// Configuration of an [`UpdateStream`].
///
/// The `*_weight` fields are relative (they need not sum to 1); each operation slot
/// in a batch picks its kind proportionally to them. Weights of zero disable a kind
/// entirely — e.g. `deletion_weight: 0.0` yields an insert-only stream equivalent in
/// shape to the bulk generator's changesets.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamConfig {
    /// RNG seed; the same `(network, config)` always produces the same stream.
    pub seed: u64,
    /// Target number of operations per micro-batch (always ≥ 1).
    pub batch_size: usize,
    /// Relative weight of new-comment operations (each usually followed by a like,
    /// mirroring the bulk generator).
    pub comment_weight: f64,
    /// Relative weight of new likes on existing comments.
    pub like_weight: f64,
    /// Relative weight of new friendships.
    pub friendship_weight: f64,
    /// Relative weight of retractions (split evenly between likes and friendships).
    pub deletion_weight: f64,
    /// Zipf-like skew of the popularity distributions (matches
    /// [`crate::config::GeneratorConfig::skew`]).
    pub skew: f64,
    /// Shard-aware emission: when `> 1`, each micro-batch is emitted with its
    /// operations stably grouped by shard affinity ([`shard_of_user`] of the root
    /// post's author; broadcast operations last), so a sharded consumer sees one
    /// contiguous run per shard instead of an interleaving. Grouping is
    /// semantics-preserving: operations with the same affinity keep their relative
    /// order, operations with different affinities touch disjoint edges, and
    /// friendship operations (whose replica set spans shards) are never reordered
    /// among themselves. `0` (the default) and `1` emit in generation order.
    pub shards: usize,
    /// Probability (`0.0..=1.0`) that a new comment or like targets the **hot
    /// discussion tree** — the initial network's most-commented post — instead of
    /// the regular popularity model. `0.0` (the default) draws nothing extra from
    /// the RNG, so existing seeded streams are byte-identical. Positive values
    /// produce the adversarial workload the shard-rebalancing experiments need:
    /// one tree (hence one shard, under any static partitioner) soaking up a
    /// growing share of all comments and likes.
    pub hot_tree_bias: f64,
}

impl Default for StreamConfig {
    /// The default mix: mostly inserts with a 10% retraction share, batches of 64.
    fn default() -> Self {
        StreamConfig {
            seed: 0x005e_ed57_eaa1,
            batch_size: 64,
            comment_weight: 0.30,
            like_weight: 0.40,
            friendship_weight: 0.20,
            deletion_weight: 0.10,
            skew: 0.9,
            shards: 0,
            hot_tree_bias: 0.0,
        }
    }
}

/// An unbounded iterator of micro-batch changesets over a social network.
///
/// See the [module documentation](self) for semantics and an example.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    config: StreamConfig,
    rng: ChaCha8Rng,
    user_ids: Vec<ElementId>,
    post_ids: Vec<ElementId>,
    comment_ids: Vec<ElementId>,
    root_of: HashMap<ElementId, ElementId>,
    /// Author of each post — the id the partition function keys on, so the stream
    /// can compute the shard affinity of every comment/like it emits.
    author_of_post: HashMap<ElementId, ElementId>,
    /// Current likes, as a set (for O(1) duplicate checks)…
    like_set: HashSet<(ElementId, ElementId)>,
    /// …and as a vector (for O(1) removal-target sampling via `swap_remove`).
    like_list: Vec<(ElementId, ElementId)>,
    /// Current friendships, normalised `(min, max)`, same dual representation.
    friend_set: HashSet<(ElementId, ElementId)>,
    friend_list: Vec<(ElementId, ElementId)>,
    user_popularity: ZipfSampler,
    next_id: ElementId,
    next_timestamp: u64,
    batches_emitted: u64,
    /// The hot discussion tree targeted by [`StreamConfig::hot_tree_bias`]: the
    /// initial network's most-commented post (`None` when there are no posts).
    hot_root: Option<ElementId>,
    /// Comments of the hot tree, maintained as the stream grows it.
    hot_comments: Vec<ElementId>,
}

impl UpdateStream {
    /// Create a stream over `network` (a snapshot of ids and edges is taken; the
    /// network itself is not retained).
    ///
    /// # Panics
    /// Panics if the network has no users (there would be nothing to generate).
    pub fn new(network: &SocialNetwork, config: StreamConfig) -> Self {
        assert!(
            !network.users.is_empty(),
            "UpdateStream requires at least one user"
        );
        let user_ids: Vec<ElementId> = network.users.iter().map(|u| u.id).collect();
        let post_ids: Vec<ElementId> = network.posts.iter().map(|p| p.id).collect();
        let comment_ids: Vec<ElementId> = network.comments.iter().map(|c| c.id).collect();
        let root_of = network
            .comments
            .iter()
            .map(|c| (c.id, c.root_post))
            .collect();
        let author_of_post = network.posts.iter().map(|p| (p.id, p.author)).collect();
        let like_list: Vec<(ElementId, ElementId)> = network.likes.clone();
        let like_set = like_list.iter().copied().collect();
        let friend_list: Vec<(ElementId, ElementId)> = network
            .friendships
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        let friend_set = friend_list.iter().copied().collect();
        let user_popularity = ZipfSampler::new(user_ids.len(), config.skew);
        let next_timestamp = network
            .posts
            .iter()
            .map(|p| p.timestamp)
            .chain(network.comments.iter().map(|c| c.timestamp))
            .max()
            .unwrap_or(0)
            + 1;
        // the hot tree of `hot_tree_bias`: the most-commented initial post
        // (max_by_key keeps the last maximum, so ties resolve deterministically)
        let mut comments_per_post: HashMap<ElementId, usize> = HashMap::new();
        for comment in &network.comments {
            *comments_per_post.entry(comment.root_post).or_insert(0) += 1;
        }
        let hot_root = network
            .posts
            .iter()
            .map(|p| p.id)
            .max_by_key(|id| comments_per_post.get(id).copied().unwrap_or(0));
        let hot_comments = match hot_root {
            Some(root) => network
                .comments
                .iter()
                .filter(|c| c.root_post == root)
                .map(|c| c.id)
                .collect(),
            None => Vec::new(),
        };
        UpdateStream {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            user_ids,
            post_ids,
            comment_ids,
            root_of,
            author_of_post,
            like_set,
            like_list,
            friend_set,
            friend_list,
            user_popularity,
            next_id: network.max_id() + 1,
            next_timestamp,
            config,
            batches_emitted: 0,
            hot_root,
            hot_comments,
        }
    }

    /// Number of micro-batches emitted so far.
    pub fn batches_emitted(&self) -> u64 {
        self.batches_emitted
    }

    /// Consume the stream into an iterator of [`SequencedBatch`]es: each emitted
    /// micro-batch carries its zero-based sequence number, the ordering key the
    /// pipelined ingestion engine's watermark merge is driven by.
    ///
    /// # Panics
    /// Panics if batches were already pulled from this stream — sequence numbers
    /// must start at the batch the consumer will actually see first.
    pub fn sequenced(self) -> Sequenced<UpdateStream> {
        assert_eq!(
            self.batches_emitted, 0,
            "sequenced() must wrap a fresh stream, not one already advanced"
        );
        sequenced(self)
    }

    /// Current number of live likes in the stream's view of the network.
    pub fn live_likes(&self) -> usize {
        self.like_list.len()
    }

    /// Current number of live friendships in the stream's view of the network.
    pub fn live_friendships(&self) -> usize {
        self.friend_list.len()
    }

    /// The post id of the hot discussion tree targeted by
    /// [`StreamConfig::hot_tree_bias`] (`None` when the network has no posts).
    pub fn hot_tree_root(&self) -> Option<ElementId> {
        self.hot_root
    }

    /// Shard affinity of an operation under a `shards`-way partition: the shard
    /// owning the discussion tree the operation touches ([`shard_of_user`] of the
    /// root post's author), or `None` for operations without a single owner
    /// (user registrations and friendship edges, which a sharded consumer
    /// broadcasts or replica-manages).
    pub fn shard_of_operation(&self, op: &ChangeOperation, shards: usize) -> Option<usize> {
        let root = match op {
            ChangeOperation::AddPost { post } => return Some(shard_of_user(post.author, shards)),
            ChangeOperation::AddComment { comment } => comment.root_post,
            ChangeOperation::AddLike { comment, .. }
            | ChangeOperation::RemoveLike { comment, .. } => self.root_of.get(comment).copied()?,
            ChangeOperation::AddUser { .. }
            | ChangeOperation::AddFriendship { .. }
            | ChangeOperation::RemoveFriendship { .. } => return None,
        };
        self.author_of_post
            .get(&root)
            .map(|&author| shard_of_user(author, shards))
    }

    fn fresh_id(&mut self) -> ElementId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn fresh_timestamp(&mut self) -> u64 {
        let ts = self.next_timestamp;
        self.next_timestamp += self.rng.gen_range(1..5);
        ts
    }

    fn sample_user(&mut self) -> ElementId {
        self.user_ids[self.user_popularity.sample(&mut self.rng)]
    }

    /// Whether the next comment/like should target the hot tree. Draws from the
    /// RNG **only** when the bias is positive, so `hot_tree_bias: 0.0` streams
    /// are byte-identical to streams generated before the knob existed.
    fn roll_hot_tree(&mut self) -> bool {
        self.config.hot_tree_bias > 0.0
            && self.hot_root.is_some()
            && self.rng.gen_bool(self.config.hot_tree_bias.min(1.0))
    }

    /// Emit a new comment replying to a uniformly chosen existing submission,
    /// optionally followed by a like on it (as in the bulk generator).
    fn push_comment(&mut self, operations: &mut Vec<ChangeOperation>) {
        let id = self.fresh_id();
        let timestamp = self.fresh_timestamp();
        let author = self.sample_user();
        let (parent, root_post) = if self.roll_hot_tree() {
            let root = self.hot_root.expect("roll_hot_tree checked hot_root"); // lint: allow(panic) — roll_hot_tree establishes hot_root before this arm is reachable
            if self.hot_comments.is_empty() || self.rng.gen_bool(0.4) {
                (root, root)
            } else {
                let parent = *self.hot_comments.choose(&mut self.rng).expect("non-empty"); // lint: allow(panic) — the arm is gated on hot_comments being non-empty
                (parent, root)
            }
        } else if self.comment_ids.is_empty() || self.rng.gen_bool(0.4) {
            match self.post_ids.choose(&mut self.rng) {
                Some(&post) => (post, post),
                None => return, // no posts at all: nothing to attach a comment to
            }
        } else {
            let parent = *self.comment_ids.choose(&mut self.rng).expect("non-empty"); // lint: allow(panic) — the arm is gated on comment_ids being non-empty
            let root = self.root_of.get(&parent).copied().unwrap_or(parent);
            (parent, root)
        };
        self.comment_ids.push(id);
        self.root_of.insert(id, root_post);
        if Some(root_post) == self.hot_root {
            self.hot_comments.push(id);
        }
        operations.push(ChangeOperation::AddComment {
            comment: Comment {
                id,
                timestamp,
                author,
                parent,
                root_post,
            },
        });
        if self.rng.gen_bool(0.7) {
            let liker = self.sample_user();
            if self.like_set.insert((liker, id)) {
                self.like_list.push((liker, id));
                operations.push(ChangeOperation::AddLike {
                    user: liker,
                    comment: id,
                });
            }
        }
    }

    /// Emit a new like from a popularity-weighted user on a uniform comment.
    fn push_like(&mut self, operations: &mut Vec<ChangeOperation>) {
        if self.comment_ids.is_empty() {
            return;
        }
        let user = self.sample_user();
        let comment = if self.roll_hot_tree() && !self.hot_comments.is_empty() {
            *self.hot_comments.choose(&mut self.rng).expect("non-empty") // lint: allow(panic) — the caller checked hot_comments is non-empty
        } else {
            *self.comment_ids.choose(&mut self.rng).expect("non-empty") // lint: allow(panic) — the caller checked comment_ids is non-empty
        };
        if self.like_set.insert((user, comment)) {
            self.like_list.push((user, comment));
            operations.push(ChangeOperation::AddLike { user, comment });
        }
    }

    /// Emit a new friendship between two popularity-weighted distinct users.
    fn push_friendship(&mut self, operations: &mut Vec<ChangeOperation>) {
        if self.user_ids.len() < 2 {
            return;
        }
        if let Some((ra, rb)) = sample_distinct_pair(&self.user_popularity, &mut self.rng) {
            let (a, b) = (self.user_ids[ra], self.user_ids[rb]);
            let key = (a.min(b), a.max(b));
            if self.friend_set.insert(key) {
                self.friend_list.push(key);
                operations.push(ChangeOperation::AddFriendship { a, b });
            }
        }
    }

    /// Emit a retraction of a uniformly chosen live like or friendship.
    fn push_removal(&mut self, operations: &mut Vec<ChangeOperation>) {
        let remove_like = if self.like_list.is_empty() {
            false
        } else if self.friend_list.is_empty() {
            true
        } else {
            self.rng.gen_bool(0.5)
        };
        if remove_like {
            let idx = self.rng.gen_range(0..self.like_list.len());
            let (user, comment) = self.like_list.swap_remove(idx);
            self.like_set.remove(&(user, comment));
            operations.push(ChangeOperation::RemoveLike { user, comment });
        } else if !self.friend_list.is_empty() {
            let idx = self.rng.gen_range(0..self.friend_list.len());
            let (a, b) = self.friend_list.swap_remove(idx);
            self.friend_set.remove(&(a, b));
            operations.push(ChangeOperation::RemoveFriendship { a, b });
        }
    }
}

impl Iterator for UpdateStream {
    type Item = ChangeSet;

    /// Produce the next micro-batch. Never returns `None`.
    fn next(&mut self) -> Option<ChangeSet> {
        let total_weight = self.config.comment_weight
            + self.config.like_weight
            + self.config.friendship_weight
            + self.config.deletion_weight;
        let mut operations = Vec::with_capacity(self.config.batch_size);
        // Bounded attempts: a saturated graph (every like present, every pair
        // friends) may yield fewer operations than `batch_size`, never an
        // infinite loop.
        let target = self.config.batch_size.max(1);
        let mut attempts = 0usize;
        while operations.len() < target && attempts < 20 * target {
            attempts += 1;
            if total_weight <= 0.0 {
                // all weights zero: degenerate config, fall back to likes
                self.push_like(&mut operations);
                continue;
            }
            let roll = self.rng.gen::<f64>() * total_weight;
            if roll < self.config.comment_weight {
                self.push_comment(&mut operations);
            } else if roll < self.config.comment_weight + self.config.like_weight {
                self.push_like(&mut operations);
            } else if roll
                < self.config.comment_weight
                    + self.config.like_weight
                    + self.config.friendship_weight
            {
                self.push_friendship(&mut operations);
            } else {
                self.push_removal(&mut operations);
            }
        }
        if self.config.shards > 1 {
            // Shard-aware emission: stable grouping by affinity (owned shards in
            // order, broadcast/replica-managed operations last). Stability keeps
            // same-affinity operations — the only ones that can touch the same
            // edge — in generation order, so replay semantics are unchanged.
            let shards = self.config.shards;
            operations = {
                let mut grouped: Vec<Vec<ChangeOperation>> = vec![Vec::new(); shards + 1];
                for op in operations {
                    let group = self.shard_of_operation(&op, shards).unwrap_or(shards);
                    grouped[group].push(op);
                }
                grouped.into_iter().flatten().collect()
            };
        }
        self.batches_emitted += 1;
        Some(ChangeSet { operations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate_workload;
    use crate::model::apply_changeset;

    fn test_network() -> SocialNetwork {
        generate_workload(&GeneratorConfig::tiny(17)).initial
    }

    fn test_config(seed: u64) -> StreamConfig {
        StreamConfig {
            seed,
            batch_size: 16,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn stream_is_deterministic_for_a_fixed_seed() {
        let network = test_network();
        let a: Vec<ChangeSet> = UpdateStream::new(&network, test_config(5))
            .take(10)
            .collect();
        let b: Vec<ChangeSet> = UpdateStream::new(&network, test_config(5))
            .take(10)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_produce_different_streams() {
        let network = test_network();
        let a: Vec<ChangeSet> = UpdateStream::new(&network, test_config(1))
            .take(5)
            .collect();
        let b: Vec<ChangeSet> = UpdateStream::new(&network, test_config(2))
            .take(5)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn batches_approach_the_configured_size() {
        let network = test_network();
        let mut stream = UpdateStream::new(&network, test_config(9));
        for _ in 0..20 {
            let batch = stream.next().unwrap();
            assert!(!batch.operations.is_empty());
            assert!(batch.operations.len() <= 16 + 1); // +1: comment+like pair may overshoot
        }
        assert_eq!(stream.batches_emitted(), 20);
    }

    #[test]
    fn emitted_operations_stay_valid_when_applied_in_order() {
        let network = test_network();
        let mut live = network.clone();
        let mut like_set: HashSet<(ElementId, ElementId)> = live.likes.iter().copied().collect();
        let mut friend_set: HashSet<(ElementId, ElementId)> = live
            .friendships
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        let mut stream = UpdateStream::new(&network, test_config(13));
        for _ in 0..30 {
            let batch = stream.next().unwrap();
            for op in &batch.operations {
                match op {
                    ChangeOperation::AddComment { comment } => {
                        let parent_exists = live.posts.iter().any(|p| p.id == comment.parent)
                            || live.comments.iter().any(|c| c.id == comment.parent);
                        assert!(parent_exists, "comment parent must already exist");
                        assert!(
                            live.posts.iter().any(|p| p.id == comment.root_post),
                            "rootPost must be a post"
                        );
                    }
                    ChangeOperation::AddLike { user, comment } => {
                        assert!(
                            like_set.insert((*user, *comment)),
                            "AddLike must target an absent like"
                        );
                        assert!(live.comments.iter().any(|c| c.id == *comment));
                    }
                    ChangeOperation::RemoveLike { user, comment } => {
                        assert!(
                            like_set.remove(&(*user, *comment)),
                            "RemoveLike must target a live like"
                        );
                    }
                    ChangeOperation::AddFriendship { a, b } => {
                        assert_ne!(a, b);
                        assert!(
                            friend_set.insert((*a.min(b), *a.max(b))),
                            "AddFriendship must target an absent friendship"
                        );
                    }
                    ChangeOperation::RemoveFriendship { a, b } => {
                        assert!(
                            friend_set.remove(&(*a.min(b), *a.max(b))),
                            "RemoveFriendship must target a live friendship"
                        );
                    }
                    ChangeOperation::AddUser { .. } | ChangeOperation::AddPost { .. } => {
                        panic!("the stream does not create users or posts")
                    }
                }
                // AddLike inside the same batch may reference the comment added just
                // before it, so ops are applied one at a time.
                apply_changeset(
                    &mut live,
                    &ChangeSet {
                        operations: vec![op.clone()],
                    },
                );
            }
        }
    }

    #[test]
    fn streams_mix_insertions_and_removals() {
        let network = test_network();
        let ops: Vec<ChangeOperation> = UpdateStream::new(&network, test_config(21))
            .take(20)
            .flat_map(|b| b.operations)
            .collect();
        assert!(ops.iter().any(|o| o.is_removal()), "no removals generated");
        assert!(
            ops.iter().any(|o| !o.is_removal()),
            "no insertions generated"
        );
        assert!(
            ops.iter()
                .any(|o| matches!(o, ChangeOperation::AddComment { .. })),
            "no comments generated"
        );
    }

    #[test]
    fn zero_deletion_weight_yields_insert_only_streams() {
        let network = test_network();
        let config = StreamConfig {
            deletion_weight: 0.0,
            ..test_config(31)
        };
        let ops: Vec<ChangeOperation> = UpdateStream::new(&network, config)
            .take(20)
            .flat_map(|b| b.operations)
            .collect();
        assert!(!ops.is_empty());
        assert!(ops.iter().all(|o| !o.is_removal()));
    }

    #[test]
    fn all_zero_weights_fall_back_to_likes() {
        let network = test_network();
        let config = StreamConfig {
            comment_weight: 0.0,
            like_weight: 0.0,
            friendship_weight: 0.0,
            deletion_weight: 0.0,
            ..test_config(3)
        };
        let ops: Vec<ChangeOperation> = UpdateStream::new(&network, config)
            .take(5)
            .flat_map(|b| b.operations)
            .collect();
        assert!(!ops.is_empty());
        assert!(
            ops.iter()
                .all(|o| matches!(o, ChangeOperation::AddLike { .. })),
            "degenerate config must emit only likes: {ops:?}"
        );
    }

    #[test]
    fn fresh_ids_do_not_collide_with_the_network() {
        let network = test_network();
        let max_id = network.max_id();
        let ops: Vec<ChangeOperation> = UpdateStream::new(&network, test_config(41))
            .take(10)
            .flat_map(|b| b.operations)
            .collect();
        let mut seen = HashSet::new();
        for op in ops {
            if let ChangeOperation::AddComment { comment } = op {
                assert!(comment.id > max_id);
                assert!(seen.insert(comment.id), "duplicate fresh id");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_network_is_rejected() {
        let _ = UpdateStream::new(&SocialNetwork::default(), StreamConfig::default());
    }

    #[test]
    fn sequenced_batches_carry_consecutive_numbers_and_the_same_payload() {
        let network = test_network();
        let plain: Vec<ChangeSet> = UpdateStream::new(&network, test_config(47))
            .take(6)
            .collect();
        let stamped: Vec<SequencedBatch> = UpdateStream::new(&network, test_config(47))
            .sequenced()
            .take(6)
            .collect();
        assert_eq!(stamped.len(), 6);
        for (expect_seq, (raw, stamped)) in plain.iter().zip(&stamped).enumerate() {
            assert_eq!(stamped.seq, expect_seq as u64);
            assert_eq!(&stamped.batch, raw, "payload differs at seq {expect_seq}");
        }
    }

    #[test]
    #[should_panic(expected = "fresh stream")]
    fn sequenced_rejects_an_advanced_stream() {
        let network = test_network();
        let mut stream = UpdateStream::new(&network, test_config(49));
        let _ = stream.next();
        let _ = stream.sequenced();
    }

    #[test]
    fn sequenced_adapts_arbitrary_changeset_iterators() {
        let batches = vec![ChangeSet::default(), ChangeSet::default()];
        let seqs: Vec<u64> = sequenced(batches.into_iter()).map(|b| b.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn hot_tree_bias_concentrates_new_comments_and_likes() {
        let network = test_network();
        let mut stream = UpdateStream::new(
            &network,
            StreamConfig {
                hot_tree_bias: 0.9,
                ..test_config(55)
            },
        );
        let hot_root = stream.hot_tree_root().expect("network has posts");
        let mut root_of: HashMap<ElementId, ElementId> = network
            .comments
            .iter()
            .map(|c| (c.id, c.root_post))
            .collect();
        let (mut hot, mut total) = (0usize, 0usize);
        for batch in stream.by_ref().take(30) {
            for op in &batch.operations {
                let root = match op {
                    ChangeOperation::AddComment { comment } => {
                        root_of.insert(comment.id, comment.root_post);
                        Some(comment.root_post)
                    }
                    ChangeOperation::AddLike { comment, .. } => root_of.get(comment).copied(),
                    _ => None,
                };
                if let Some(root) = root {
                    total += 1;
                    if root == hot_root {
                        hot += 1;
                    }
                }
            }
        }
        assert!(
            hot * 2 > total,
            "hot tree received {hot} of {total} comment/like operations — bias not applied"
        );

        // the unbiased stream spreads the same operations out
        let mut cold_stream = UpdateStream::new(&network, test_config(55));
        let mut cold_root_of: HashMap<ElementId, ElementId> = network
            .comments
            .iter()
            .map(|c| (c.id, c.root_post))
            .collect();
        let (mut cold_hot, mut cold_total) = (0usize, 0usize);
        for batch in cold_stream.by_ref().take(30) {
            for op in &batch.operations {
                let root = match op {
                    ChangeOperation::AddComment { comment } => {
                        cold_root_of.insert(comment.id, comment.root_post);
                        Some(comment.root_post)
                    }
                    ChangeOperation::AddLike { comment, .. } => cold_root_of.get(comment).copied(),
                    _ => None,
                };
                if let Some(root) = root {
                    cold_total += 1;
                    if root == hot_root {
                        cold_hot += 1;
                    }
                }
            }
        }
        assert!(
            cold_hot * total < hot * cold_total,
            "biased stream ({hot}/{total}) should target the hot tree more than the \
             unbiased one ({cold_hot}/{cold_total})"
        );
    }

    #[test]
    fn shard_of_user_is_total_and_stable() {
        for user in [0u64, 1, 7, 1 << 40] {
            assert_eq!(shard_of_user(user, 1), 0);
            assert!(shard_of_user(user, 4) < 4);
            assert_eq!(shard_of_user(user, 4), shard_of_user(user, 4));
        }
        // shards == 0 degrades to a single shard instead of dividing by zero
        assert_eq!(shard_of_user(9, 0), 0);
    }

    #[test]
    fn sharded_emission_preserves_the_operation_multiset_and_in_shard_order() {
        let network = test_network();
        let shards = 4usize;
        let plain: Vec<ChangeSet> = UpdateStream::new(&network, test_config(19))
            .take(12)
            .collect();
        let sharded_stream = UpdateStream::new(
            &network,
            StreamConfig {
                shards,
                ..test_config(19)
            },
        );
        // an affinity oracle over the same network: a replay of the same seeded
        // stream, advanced past every batch so its root-post map covers the
        // comments created mid-stream (affinities are insert-only, so looking
        // them up after the fact gives the same answers as at emission time)
        let mut oracle = UpdateStream::new(&network, test_config(19));
        let _advance: Vec<ChangeSet> = oracle.by_ref().take(12).collect();
        let grouped: Vec<ChangeSet> = sharded_stream.take(12).collect();

        for (raw, grouped) in plain.iter().zip(&grouped) {
            // same multiset of operations…
            let mut a = raw.operations.clone();
            let mut b = grouped.operations.clone();
            let key = |op: &ChangeOperation| format!("{op:?}");
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "grouping changed the operation multiset");

            // …emitted as contiguous runs of non-decreasing affinity, with
            // broadcast operations last
            let affinities: Vec<usize> = grouped
                .operations
                .iter()
                .map(|op| oracle.shard_of_operation(op, shards).unwrap_or(shards))
                .collect();
            assert!(
                affinities.windows(2).all(|w| w[0] <= w[1]),
                "operations are not grouped by shard affinity: {affinities:?}"
            );

            // …and same-affinity operations keep their generation order
            for shard in 0..=shards {
                let raw_run: Vec<&ChangeOperation> = raw
                    .operations
                    .iter()
                    .filter(|op| oracle.shard_of_operation(op, shards).unwrap_or(shards) == shard)
                    .collect();
                let grouped_run: Vec<&ChangeOperation> = grouped
                    .operations
                    .iter()
                    .filter(|op| oracle.shard_of_operation(op, shards).unwrap_or(shards) == shard)
                    .collect();
                assert_eq!(raw_run, grouped_run, "shard {shard} run was reordered");
            }
        }
    }

    #[test]
    fn shard_affinity_follows_the_root_post_author() {
        let network = test_network();
        let stream = UpdateStream::new(&network, test_config(23));
        let shards = 3usize;
        for comment in &network.comments {
            let author = network
                .posts
                .iter()
                .find(|p| p.id == comment.root_post)
                .expect("root post exists")
                .author;
            let op = ChangeOperation::AddLike {
                user: network.users[0].id,
                comment: comment.id,
            };
            assert_eq!(
                stream.shard_of_operation(&op, shards),
                Some(shard_of_user(author, shards))
            );
        }
        let broadcast = ChangeOperation::AddFriendship {
            a: network.users[0].id,
            b: network.users[1].id,
        };
        assert_eq!(stream.shard_of_operation(&broadcast, shards), None);
    }
}
