//! Data model of the TTC 2018 "Social Media" case study.
//!
//! The schema follows Fig. 1 of the paper (itself based on the LDBC Social Network
//! Benchmark): `User`s author `Submission`s; a submission is either a `Post` (the root
//! of a discussion) or a `Comment` attached to a parent submission and carrying a
//! direct pointer to its root post. Users `like` comments and form undirected
//! `friends` relations.

use serde::{Deserialize, Serialize};

/// Globally unique identifier of any model element (user, post, comment).
pub type ElementId = u64;

/// A registered user.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// Unique id of the user.
    pub id: ElementId,
    /// Display name (synthetic).
    pub name: String,
}

/// A post: the root submission of a discussion tree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    /// Unique id of the post.
    pub id: ElementId,
    /// Creation timestamp (monotone in id for the synthetic data).
    pub timestamp: u64,
    /// Id of the authoring user.
    pub author: ElementId,
}

/// A comment, attached to a parent submission (post or comment) within the tree rooted
/// at `root_post`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Comment {
    /// Unique id of the comment.
    pub id: ElementId,
    /// Creation timestamp (monotone in id for the synthetic data).
    pub timestamp: u64,
    /// Id of the authoring user.
    pub author: ElementId,
    /// Id of the parent submission (a post or another comment).
    pub parent: ElementId,
    /// Direct pointer to the root post of the discussion tree (the `rootPost` edge).
    pub root_post: ElementId,
}

/// The initial social network: the input of the "load and initial evaluation" phase.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SocialNetwork {
    /// All users.
    pub users: Vec<User>,
    /// All posts.
    pub posts: Vec<Post>,
    /// All comments.
    pub comments: Vec<Comment>,
    /// Undirected friendship pairs `(a, b)` with `a != b` (stored once per pair).
    pub friendships: Vec<(ElementId, ElementId)>,
    /// `likes` edges `(user, comment)`.
    pub likes: Vec<(ElementId, ElementId)>,
}

impl SocialNetwork {
    /// Total number of nodes (users + posts + comments), as counted by Table II.
    pub fn node_count(&self) -> usize {
        self.users.len() + self.posts.len() + self.comments.len()
    }

    /// Total number of edges, as counted by Table II: submission (`commented` /
    /// `submissions`) edges, `rootPost` edges, `likes` edges and `friends` pairs.
    pub fn edge_count(&self) -> usize {
        // each comment contributes one parent edge and one rootPost edge
        2 * self.comments.len() + self.likes.len() + self.friendships.len()
    }

    /// Largest element id present in the network (0 if empty).
    pub fn max_id(&self) -> ElementId {
        let mut max = 0;
        for u in &self.users {
            max = max.max(u.id);
        }
        for p in &self.posts {
            max = max.max(p.id);
        }
        for c in &self.comments {
            max = max.max(c.id);
        }
        max
    }
}

/// A single update operation, as replayed during the "update and reevaluation"
/// phase.
///
/// The TTC 2018 workload contains only insertions; the streaming workloads of
/// [`crate::stream`] additionally retract `likes` and `friends` edges (node
/// deletions are not modelled — submissions are immutable in the case study).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeOperation {
    /// Register a new user.
    AddUser {
        /// The new user.
        user: User,
    },
    /// Create a new post.
    AddPost {
        /// The new post.
        post: Post,
    },
    /// Create a new comment (including its `parent` and `rootPost` edges).
    AddComment {
        /// The new comment.
        comment: Comment,
    },
    /// Create a new undirected friendship.
    AddFriendship {
        /// One endpoint.
        a: ElementId,
        /// The other endpoint.
        b: ElementId,
    },
    /// A user likes a comment.
    AddLike {
        /// The liking user.
        user: ElementId,
        /// The liked comment.
        comment: ElementId,
    },
    /// A user retracts a like (streaming workloads only; a no-op if absent).
    RemoveLike {
        /// The un-liking user.
        user: ElementId,
        /// The formerly liked comment.
        comment: ElementId,
    },
    /// An undirected friendship ends (streaming workloads only; a no-op if absent).
    RemoveFriendship {
        /// One endpoint.
        a: ElementId,
        /// The other endpoint.
        b: ElementId,
    },
}

impl ChangeOperation {
    /// Number of inserted model elements (nodes + edges) this operation represents,
    /// using the counting convention of the case study (a new comment counts as the
    /// node plus its two outgoing edges).
    pub fn inserted_elements(&self) -> usize {
        match self {
            ChangeOperation::AddUser { .. } | ChangeOperation::AddPost { .. } => 1,
            ChangeOperation::AddComment { .. } => 3,
            ChangeOperation::AddFriendship { .. } | ChangeOperation::AddLike { .. } => 1,
            ChangeOperation::RemoveLike { .. } | ChangeOperation::RemoveFriendship { .. } => 0,
        }
    }

    /// Whether this operation retracts an element instead of inserting one.
    pub fn is_removal(&self) -> bool {
        matches!(
            self,
            ChangeOperation::RemoveLike { .. } | ChangeOperation::RemoveFriendship { .. }
        )
    }
}

/// A batch of insertions applied atomically between two query re-evaluations.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChangeSet {
    /// The operations, in application order.
    pub operations: Vec<ChangeOperation>,
}

impl ChangeSet {
    /// Number of inserted model elements in this changeset.
    pub fn inserted_elements(&self) -> usize {
        self.operations.iter().map(|o| o.inserted_elements()).sum()
    }

    /// Whether the changeset contains at least one removal operation.
    pub fn has_removals(&self) -> bool {
        self.operations.iter().any(ChangeOperation::is_removal)
    }

    /// Whether the changeset contains no operations.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }
}

/// A full benchmark workload: the initial network plus the sequence of changesets.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The initial social network.
    pub initial: SocialNetwork,
    /// The changesets, applied one at a time with a query re-evaluation after each.
    pub changesets: Vec<ChangeSet>,
}

impl Workload {
    /// Total number of inserted elements across all changesets (the `#inserts` column
    /// of Table II).
    pub fn total_inserted_elements(&self) -> usize {
        self.changesets
            .iter()
            .map(ChangeSet::inserted_elements)
            .sum()
    }

    /// Apply every changeset to a copy of the initial network and return the final
    /// network (used by tests to cross-check incremental results).
    pub fn final_network(&self) -> SocialNetwork {
        let mut network = self.initial.clone();
        for changeset in &self.changesets {
            apply_changeset(&mut network, changeset);
        }
        network
    }
}

/// Apply a changeset to an in-memory network (the "model repository" view of the
/// update). The GraphBLAS solution applies the same changes to its matrices instead.
pub fn apply_changeset(network: &mut SocialNetwork, changeset: &ChangeSet) {
    for op in &changeset.operations {
        match op {
            ChangeOperation::AddUser { user } => network.users.push(user.clone()),
            ChangeOperation::AddPost { post } => network.posts.push(post.clone()),
            ChangeOperation::AddComment { comment } => network.comments.push(comment.clone()),
            ChangeOperation::AddFriendship { a, b } => network.friendships.push((*a, *b)),
            ChangeOperation::AddLike { user, comment } => network.likes.push((*user, *comment)),
            ChangeOperation::RemoveLike { user, comment } => network
                .likes
                .retain(|&(u, c)| !(u == *user && c == *comment)),
            ChangeOperation::RemoveFriendship { a, b } => network
                .friendships
                .retain(|&(x, y)| !((x, y) == (*a, *b) || (x, y) == (*b, *a))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_network() -> SocialNetwork {
        SocialNetwork {
            users: vec![
                User {
                    id: 1,
                    name: "u1".into(),
                },
                User {
                    id: 2,
                    name: "u2".into(),
                },
            ],
            posts: vec![Post {
                id: 10,
                timestamp: 100,
                author: 1,
            }],
            comments: vec![Comment {
                id: 11,
                timestamp: 101,
                author: 2,
                parent: 10,
                root_post: 10,
            }],
            friendships: vec![(1, 2)],
            likes: vec![(1, 11)],
        }
    }

    #[test]
    fn node_and_edge_counts() {
        let n = tiny_network();
        assert_eq!(n.node_count(), 4);
        // comment: parent + rootPost = 2, like = 1, friendship = 1
        assert_eq!(n.edge_count(), 4);
        assert_eq!(n.max_id(), 11);
    }

    #[test]
    fn changeset_element_counting() {
        let cs = ChangeSet {
            operations: vec![
                ChangeOperation::AddComment {
                    comment: Comment {
                        id: 12,
                        timestamp: 102,
                        author: 1,
                        parent: 11,
                        root_post: 10,
                    },
                },
                ChangeOperation::AddLike {
                    user: 2,
                    comment: 12,
                },
                ChangeOperation::AddFriendship { a: 1, b: 2 },
            ],
        };
        assert_eq!(cs.inserted_elements(), 5);
        assert!(!cs.is_empty());
        assert!(ChangeSet::default().is_empty());
    }

    #[test]
    fn apply_changeset_extends_network() {
        let mut n = tiny_network();
        let cs = ChangeSet {
            operations: vec![
                ChangeOperation::AddUser {
                    user: User {
                        id: 3,
                        name: "u3".into(),
                    },
                },
                ChangeOperation::AddLike {
                    user: 3,
                    comment: 11,
                },
            ],
        };
        apply_changeset(&mut n, &cs);
        assert_eq!(n.users.len(), 3);
        assert_eq!(n.likes.len(), 2);
    }

    #[test]
    fn workload_final_network_accumulates_all_changesets() {
        let workload = Workload {
            initial: tiny_network(),
            changesets: vec![
                ChangeSet {
                    operations: vec![ChangeOperation::AddFriendship { a: 2, b: 1 }],
                },
                ChangeSet {
                    operations: vec![ChangeOperation::AddPost {
                        post: Post {
                            id: 20,
                            timestamp: 200,
                            author: 2,
                        },
                    }],
                },
            ],
        };
        let final_net = workload.final_network();
        assert_eq!(final_net.friendships.len(), 2);
        assert_eq!(final_net.posts.len(), 2);
        assert_eq!(workload.total_inserted_elements(), 2);
    }

    #[test]
    fn empty_network_counts() {
        let n = SocialNetwork::default();
        assert_eq!(n.node_count(), 0);
        assert_eq!(n.edge_count(), 0);
        assert_eq!(n.max_id(), 0);
    }
}
