//! Text serialisation of networks and changesets.
//!
//! The original TTC 2018 benchmark distributes its models as pipe-separated CSV files
//! (one file per element kind) and its updates as change sequences. We mirror that
//! format so the loader in `ttc-social-media` exercises a realistic parsing path, and
//! so workloads can be dumped to disk and inspected.

use crate::model::{
    ChangeOperation, ChangeSet, Comment, ElementId, Post, SocialNetwork, User, Workload,
};

/// The CSV rendering of an initial network (one string per file of the original
/// benchmark layout).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkCsv {
    /// `id|name` per line.
    pub users: String,
    /// `id|timestamp|author` per line.
    pub posts: String,
    /// `id|timestamp|author|parent|rootPost` per line.
    pub comments: String,
    /// `user1|user2` per line (one line per undirected pair).
    pub friends: String,
    /// `user|comment` per line.
    pub likes: String,
}

/// Render a network in the pipe-separated CSV layout.
pub fn network_to_csv(network: &SocialNetwork) -> NetworkCsv {
    let mut out = NetworkCsv::default();
    for u in &network.users {
        out.users.push_str(&format!("{}|{}\n", u.id, u.name));
    }
    for p in &network.posts {
        out.posts
            .push_str(&format!("{}|{}|{}\n", p.id, p.timestamp, p.author));
    }
    for c in &network.comments {
        out.comments.push_str(&format!(
            "{}|{}|{}|{}|{}\n",
            c.id, c.timestamp, c.author, c.parent, c.root_post
        ));
    }
    for &(a, b) in &network.friendships {
        out.friends.push_str(&format!("{a}|{b}\n"));
    }
    for &(u, c) in &network.likes {
        out.likes.push_str(&format!("{u}|{c}\n"));
    }
    out
}

/// Parse a network from the pipe-separated CSV layout produced by [`network_to_csv`].
pub fn network_from_csv(csv: &NetworkCsv) -> Result<SocialNetwork, String> {
    let mut network = SocialNetwork::default();
    for (line_no, line) in non_empty_lines(&csv.users) {
        let fields = split(line, 2, "users", line_no)?;
        network.users.push(User {
            id: parse_id(fields[0], "users", line_no)?,
            name: fields[1].to_string(),
        });
    }
    for (line_no, line) in non_empty_lines(&csv.posts) {
        let fields = split(line, 3, "posts", line_no)?;
        network.posts.push(Post {
            id: parse_id(fields[0], "posts", line_no)?,
            timestamp: parse_id(fields[1], "posts", line_no)?,
            author: parse_id(fields[2], "posts", line_no)?,
        });
    }
    for (line_no, line) in non_empty_lines(&csv.comments) {
        let fields = split(line, 5, "comments", line_no)?;
        network.comments.push(Comment {
            id: parse_id(fields[0], "comments", line_no)?,
            timestamp: parse_id(fields[1], "comments", line_no)?,
            author: parse_id(fields[2], "comments", line_no)?,
            parent: parse_id(fields[3], "comments", line_no)?,
            root_post: parse_id(fields[4], "comments", line_no)?,
        });
    }
    for (line_no, line) in non_empty_lines(&csv.friends) {
        let fields = split(line, 2, "friends", line_no)?;
        network.friendships.push((
            parse_id(fields[0], "friends", line_no)?,
            parse_id(fields[1], "friends", line_no)?,
        ));
    }
    for (line_no, line) in non_empty_lines(&csv.likes) {
        let fields = split(line, 2, "likes", line_no)?;
        network.likes.push((
            parse_id(fields[0], "likes", line_no)?,
            parse_id(fields[1], "likes", line_no)?,
        ));
    }
    Ok(network)
}

/// Render a changeset as one line per operation.
///
/// Operation lines are `U|id|name`, `P|id|ts|author`, `C|id|ts|author|parent|root`,
/// `F|a|b`, `L|user|comment` — the same information content as the original change
/// sequences — plus the streaming retractions `-L|user|comment` and `-F|a|b`.
pub fn changeset_to_csv(changeset: &ChangeSet) -> String {
    let mut out = String::new();
    for op in &changeset.operations {
        match op {
            ChangeOperation::AddUser { user } => {
                out.push_str(&format!("U|{}|{}\n", user.id, user.name));
            }
            ChangeOperation::AddPost { post } => {
                out.push_str(&format!(
                    "P|{}|{}|{}\n",
                    post.id, post.timestamp, post.author
                ));
            }
            ChangeOperation::AddComment { comment } => {
                out.push_str(&format!(
                    "C|{}|{}|{}|{}|{}\n",
                    comment.id,
                    comment.timestamp,
                    comment.author,
                    comment.parent,
                    comment.root_post
                ));
            }
            ChangeOperation::AddFriendship { a, b } => {
                out.push_str(&format!("F|{a}|{b}\n"));
            }
            ChangeOperation::AddLike { user, comment } => {
                out.push_str(&format!("L|{user}|{comment}\n"));
            }
            ChangeOperation::RemoveLike { user, comment } => {
                out.push_str(&format!("-L|{user}|{comment}\n"));
            }
            ChangeOperation::RemoveFriendship { a, b } => {
                out.push_str(&format!("-F|{a}|{b}\n"));
            }
        }
    }
    out
}

/// Parse a changeset produced by [`changeset_to_csv`].
pub fn changeset_from_csv(text: &str) -> Result<ChangeSet, String> {
    let mut operations = Vec::new();
    for (line_no, line) in non_empty_lines(text) {
        let fields: Vec<&str> = line.split('|').collect();
        let kind = fields.first().copied().unwrap_or("");
        let op = match kind {
            "U" => {
                require_fields(&fields, 3, "changeset", line_no)?;
                ChangeOperation::AddUser {
                    user: User {
                        id: parse_id(fields[1], "changeset", line_no)?,
                        name: fields[2].to_string(),
                    },
                }
            }
            "P" => {
                require_fields(&fields, 4, "changeset", line_no)?;
                ChangeOperation::AddPost {
                    post: Post {
                        id: parse_id(fields[1], "changeset", line_no)?,
                        timestamp: parse_id(fields[2], "changeset", line_no)?,
                        author: parse_id(fields[3], "changeset", line_no)?,
                    },
                }
            }
            "C" => {
                require_fields(&fields, 6, "changeset", line_no)?;
                ChangeOperation::AddComment {
                    comment: Comment {
                        id: parse_id(fields[1], "changeset", line_no)?,
                        timestamp: parse_id(fields[2], "changeset", line_no)?,
                        author: parse_id(fields[3], "changeset", line_no)?,
                        parent: parse_id(fields[4], "changeset", line_no)?,
                        root_post: parse_id(fields[5], "changeset", line_no)?,
                    },
                }
            }
            "F" => {
                require_fields(&fields, 3, "changeset", line_no)?;
                ChangeOperation::AddFriendship {
                    a: parse_id(fields[1], "changeset", line_no)?,
                    b: parse_id(fields[2], "changeset", line_no)?,
                }
            }
            "L" => {
                require_fields(&fields, 3, "changeset", line_no)?;
                ChangeOperation::AddLike {
                    user: parse_id(fields[1], "changeset", line_no)?,
                    comment: parse_id(fields[2], "changeset", line_no)?,
                }
            }
            "-L" => {
                require_fields(&fields, 3, "changeset", line_no)?;
                ChangeOperation::RemoveLike {
                    user: parse_id(fields[1], "changeset", line_no)?,
                    comment: parse_id(fields[2], "changeset", line_no)?,
                }
            }
            "-F" => {
                require_fields(&fields, 3, "changeset", line_no)?;
                ChangeOperation::RemoveFriendship {
                    a: parse_id(fields[1], "changeset", line_no)?,
                    b: parse_id(fields[2], "changeset", line_no)?,
                }
            }
            other => {
                return Err(format!(
                    "changeset line {line_no}: unknown operation kind {other:?}"
                ))
            }
        };
        operations.push(op);
    }
    Ok(ChangeSet { operations })
}

/// Round-trip an entire workload through the CSV representation (used by tests).
pub fn workload_roundtrip(workload: &Workload) -> Result<Workload, String> {
    let initial = network_from_csv(&network_to_csv(&workload.initial))?;
    let mut changesets = Vec::with_capacity(workload.changesets.len());
    for cs in &workload.changesets {
        changesets.push(changeset_from_csv(&changeset_to_csv(cs))?);
    }
    Ok(Workload {
        initial,
        changesets,
    })
}

fn non_empty_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
}

fn split<'a>(
    line: &'a str,
    expected: usize,
    file: &str,
    line_no: usize,
) -> Result<Vec<&'a str>, String> {
    let fields: Vec<&str> = line.split('|').collect();
    require_fields(&fields, expected, file, line_no)?;
    Ok(fields)
}

fn require_fields(
    fields: &[&str],
    expected: usize,
    file: &str,
    line_no: usize,
) -> Result<(), String> {
    if fields.len() != expected {
        return Err(format!(
            "{file} line {line_no}: expected {expected} fields, found {}",
            fields.len()
        ));
    }
    Ok(())
}

fn parse_id(text: &str, file: &str, line_no: usize) -> Result<ElementId, String> {
    text.parse::<ElementId>()
        .map_err(|e| format!("{file} line {line_no}: invalid id {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate_workload;

    #[test]
    fn network_roundtrip() {
        let workload = generate_workload(&GeneratorConfig::tiny(3));
        let csv = network_to_csv(&workload.initial);
        let parsed = network_from_csv(&csv).unwrap();
        assert_eq!(parsed, workload.initial);
    }

    #[test]
    fn changeset_roundtrip() {
        let workload = generate_workload(&GeneratorConfig::tiny(4));
        for cs in &workload.changesets {
            let text = changeset_to_csv(cs);
            let parsed = changeset_from_csv(&text).unwrap();
            assert_eq!(&parsed, cs);
        }
    }

    #[test]
    fn full_workload_roundtrip() {
        let workload = generate_workload(&GeneratorConfig::tiny(5));
        assert_eq!(workload_roundtrip(&workload).unwrap(), workload);
    }

    #[test]
    fn parse_errors_are_reported_with_context() {
        let csv = NetworkCsv {
            users: "1|alice\nnot-a-number|bob\n".to_string(),
            ..Default::default()
        };
        let err = network_from_csv(&csv).unwrap_err();
        assert!(err.contains("users"));
        assert!(err.contains("line 2"));

        let err = changeset_from_csv("X|1|2\n").unwrap_err();
        assert!(err.contains("unknown operation"));

        let err = changeset_from_csv("F|1\n").unwrap_err();
        assert!(err.contains("expected 3 fields"));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let cs = changeset_from_csv("\n\nF|1|2\n\n").unwrap();
        assert_eq!(cs.operations.len(), 1);
    }
}
