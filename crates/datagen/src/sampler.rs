//! Skewed ("Facebook-like") discrete distributions.
//!
//! The LDBC Datagen used by the original benchmark produces power-law-ish degree and
//! popularity distributions. We approximate this with a Zipf-like sampler: item `k`
//! (0-based rank) is drawn with probability proportional to `1 / (k + 1)^s`, sampled
//! in `O(log n)` by binary search over the precomputed cumulative weights.

use rand::Rng;

/// A Zipf-like sampler over the ranks `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `n` ranks with skew exponent `s` (`s = 0` is uniform,
    /// larger values concentrate the mass on the first ranks).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no ranks (never true: construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty"); // lint: allow(panic) — the sampler constructor rejects empty weight sets
        let x: f64 = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("weights are finite")) // lint: allow(panic) — weights are validated finite at construction
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Draw a pair of distinct ranks (used for friendship endpoints). Returns `None` if
/// the sampler has fewer than two ranks.
pub fn sample_distinct_pair<R: Rng + ?Sized>(
    sampler: &ZipfSampler,
    rng: &mut R,
) -> Option<(usize, usize)> {
    if sampler.len() < 2 {
        return None;
    }
    let a = sampler.sample(rng);
    for _ in 0..64 {
        let b = sampler.sample(rng);
        if b != a {
            return Some((a, b));
        }
    }
    // Extremely skewed distributions may keep returning the same rank; fall back to a
    // uniform second endpoint to guarantee progress.
    let mut b = rng.gen_range(0..sampler.len());
    if b == a {
        b = (b + 1) % sampler.len();
    }
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn samples_are_in_range() {
        let sampler = ZipfSampler::new(50, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 50);
        }
        assert_eq!(sampler.len(), 50);
        assert!(!sampler.is_empty());
    }

    #[test]
    fn skewed_distribution_prefers_low_ranks() {
        let sampler = ZipfSampler::new(100, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[90..].iter().sum();
        assert!(
            head > 5 * tail,
            "head {head} should dominate tail {tail} under skew"
        );
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn distinct_pair_never_returns_equal_ranks() {
        let sampler = ZipfSampler::new(5, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..500 {
            let (a, b) = sample_distinct_pair(&sampler, &mut rng).unwrap();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn distinct_pair_requires_two_ranks() {
        let sampler = ZipfSampler::new(1, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        assert!(sample_distinct_pair(&sampler, &mut rng).is_none());
    }

    #[test]
    #[should_panic]
    fn empty_sampler_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let sampler = ZipfSampler::new(30, 0.9);
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let seq_a: Vec<usize> = (0..100).map(|_| sampler.sample(&mut a)).collect();
        let seq_b: Vec<usize> = (0..100).map(|_| sampler.sample(&mut b)).collect();
        assert_eq!(seq_a, seq_b);
    }
}
