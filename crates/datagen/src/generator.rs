//! Synthetic workload generation.
//!
//! Produces an initial [`SocialNetwork`] plus a sequence of insertion [`ChangeSet`]s
//! whose sizes follow the calibration in [`crate::config`]. All randomness flows from
//! the seed in the configuration, so a given configuration always produces the same
//! workload — which is essential for comparing the batch, incremental and baseline
//! solutions on identical inputs.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::config::GeneratorConfig;
use crate::model::{
    ChangeOperation, ChangeSet, Comment, ElementId, Post, SocialNetwork, User, Workload,
};
use crate::sampler::{sample_distinct_pair, ZipfSampler};

/// Generate a complete workload (initial network + changesets) for a configuration.
pub fn generate_workload(config: &GeneratorConfig) -> Workload {
    let mut generator = Generator::new(config.clone());
    let initial = generator.generate_initial();
    let changesets = generator.generate_changesets(&initial);
    Workload {
        initial,
        changesets,
    }
}

/// Convenience wrapper: workload for a paper scale factor.
pub fn generate_scale_factor(scale_factor: u64) -> Workload {
    generate_workload(&GeneratorConfig::for_scale_factor(scale_factor))
}

struct Generator {
    config: GeneratorConfig,
    rng: ChaCha8Rng,
    next_id: ElementId,
    next_timestamp: u64,
}

impl Generator {
    fn new(config: GeneratorConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        Generator {
            config,
            rng,
            next_id: 1,
            next_timestamp: 1_000,
        }
    }

    fn fresh_id(&mut self) -> ElementId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn fresh_timestamp(&mut self) -> u64 {
        let ts = self.next_timestamp;
        self.next_timestamp += self.rng.gen_range(1..5);
        ts
    }

    fn generate_initial(&mut self) -> SocialNetwork {
        let mut network = SocialNetwork::default();

        // Users.
        for i in 0..self.config.users {
            let id = self.fresh_id();
            network.users.push(User {
                id,
                name: format!("user-{i}"),
            });
        }
        let user_ids: Vec<ElementId> = network.users.iter().map(|u| u.id).collect();
        let user_popularity = ZipfSampler::new(user_ids.len().max(1), self.config.skew);

        // Posts, authored by popularity-weighted users.
        for _ in 0..self.config.posts {
            let id = self.fresh_id();
            let timestamp = self.fresh_timestamp();
            let author = user_ids[user_popularity.sample(&mut self.rng)];
            network.posts.push(Post {
                id,
                timestamp,
                author,
            });
        }
        let post_ids: Vec<ElementId> = network.posts.iter().map(|p| p.id).collect();
        let post_popularity = ZipfSampler::new(post_ids.len().max(1), self.config.skew);

        // Comments: each picks a root post (popularity weighted); its parent is the
        // post itself or an earlier comment of the same post, forming a tree.
        let mut comments_per_post: Vec<Vec<ElementId>> = vec![Vec::new(); post_ids.len()];
        for _ in 0..self.config.comments {
            let id = self.fresh_id();
            let timestamp = self.fresh_timestamp();
            let author = user_ids[user_popularity.sample(&mut self.rng)];
            let post_rank = post_popularity.sample(&mut self.rng);
            let root_post = post_ids[post_rank];
            let parent = if comments_per_post[post_rank].is_empty() || self.rng.gen_bool(0.4) {
                root_post
            } else {
                *comments_per_post[post_rank]
                    .choose(&mut self.rng)
                    .expect("non-empty checked above") // lint: allow(panic) — the candidate list was checked non-empty above
            };
            comments_per_post[post_rank].push(id);
            network.comments.push(Comment {
                id,
                timestamp,
                author,
                parent,
                root_post,
            });
        }
        let comment_ids: Vec<ElementId> = network.comments.iter().map(|c| c.id).collect();
        let comment_popularity = ZipfSampler::new(comment_ids.len().max(1), self.config.skew);

        // Friendships: popularity-weighted endpoints, deduplicated, no self loops.
        // The target is capped by the number of distinct pairs and the sampling loop is
        // bounded by an attempt budget, so saturated (tiny) configurations terminate.
        let mut friend_set: std::collections::HashSet<(ElementId, ElementId)> =
            std::collections::HashSet::new();
        let max_pairs = user_ids
            .len()
            .saturating_mul(user_ids.len().saturating_sub(1))
            / 2;
        let friend_target = self.config.friendships.min(max_pairs);
        let mut friend_attempts = 0usize;
        while friend_set.len() < friend_target
            && user_ids.len() >= 2
            && friend_attempts < 50 * friend_target.max(1)
        {
            friend_attempts += 1;
            if let Some((a, b)) = sample_distinct_pair(&user_popularity, &mut self.rng) {
                let (ua, ub) = (user_ids[a], user_ids[b]);
                let key = (ua.min(ub), ua.max(ub));
                friend_set.insert(key);
            }
        }
        network.friendships = friend_set.into_iter().collect();
        network.friendships.sort_unstable();

        // Likes: popularity-weighted user likes popularity-weighted comment, dedup.
        let mut like_set: std::collections::HashSet<(ElementId, ElementId)> =
            std::collections::HashSet::new();
        let like_target = self
            .config
            .likes
            .min(user_ids.len() * comment_ids.len().max(1));
        let mut attempts = 0usize;
        while like_set.len() < like_target && attempts < 50 * like_target.max(1) {
            attempts += 1;
            if comment_ids.is_empty() {
                break;
            }
            let user = user_ids[user_popularity.sample(&mut self.rng)];
            let comment = comment_ids[comment_popularity.sample(&mut self.rng)];
            like_set.insert((user, comment));
        }
        network.likes = like_set.into_iter().collect();
        network.likes.sort_unstable();

        network
    }

    fn generate_changesets(&mut self, initial: &SocialNetwork) -> Vec<ChangeSet> {
        let user_ids: Vec<ElementId> = initial.users.iter().map(|u| u.id).collect();
        let post_ids: Vec<ElementId> = initial.posts.iter().map(|p| p.id).collect();
        let mut comment_ids: Vec<ElementId> = initial.comments.iter().map(|c| c.id).collect();
        let mut root_of: std::collections::HashMap<ElementId, ElementId> = initial
            .comments
            .iter()
            .map(|c| (c.id, c.root_post))
            .collect();
        let mut existing_friendships: std::collections::HashSet<(ElementId, ElementId)> = initial
            .friendships
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        let mut existing_likes: std::collections::HashSet<(ElementId, ElementId)> =
            initial.likes.iter().copied().collect();

        let user_popularity = ZipfSampler::new(user_ids.len().max(1), self.config.skew);

        let mut changesets = Vec::with_capacity(self.config.changesets);
        let per_changeset = (self.config.total_inserts / self.config.changesets.max(1)).max(1);
        let mut remaining = self.config.total_inserts;

        for _ in 0..self.config.changesets {
            let mut operations = Vec::new();
            let mut inserted = 0usize;
            let budget = per_changeset.min(remaining.max(1));

            // Bounded so a saturated graph (all likes / friendships already present)
            // cannot spin forever when the dice keep landing on duplicate edges.
            let mut rolls = 0usize;
            while inserted < budget && rolls < 100 * budget.max(1) {
                rolls += 1;
                let roll: f64 = self.rng.gen();
                if roll < 0.35 && !comment_ids.is_empty() {
                    // New comment replying to an existing submission (+ a like on it),
                    // mirroring the paper's running example.
                    let id = self.fresh_id();
                    let timestamp = self.fresh_timestamp();
                    let author = user_ids[user_popularity.sample(&mut self.rng)];
                    let parent = *comment_ids.choose(&mut self.rng).expect("non-empty"); // lint: allow(panic) — the branch guard established comment_ids is non-empty
                    let root_post = root_of
                        .get(&parent)
                        .copied()
                        .unwrap_or_else(|| *post_ids.first().expect("at least one post exists")); // lint: allow(panic) — the generator seeds at least one post before any comment
                    let comment = Comment {
                        id,
                        timestamp,
                        author,
                        parent,
                        root_post,
                    };
                    root_of.insert(id, root_post);
                    comment_ids.push(id);
                    operations.push(ChangeOperation::AddComment { comment });
                    inserted += 3;
                    // usually a like arrives with the new comment
                    if self.rng.gen_bool(0.7) {
                        let liker = user_ids[user_popularity.sample(&mut self.rng)];
                        if existing_likes.insert((liker, id)) {
                            operations.push(ChangeOperation::AddLike {
                                user: liker,
                                comment: id,
                            });
                            inserted += 1;
                        }
                    }
                } else if roll < 0.70 && !comment_ids.is_empty() {
                    // New like on an existing comment.
                    let user = user_ids[user_popularity.sample(&mut self.rng)];
                    let comment = *comment_ids.choose(&mut self.rng).expect("non-empty"); // lint: allow(panic) — the branch guard established comment_ids is non-empty
                    if existing_likes.insert((user, comment)) {
                        operations.push(ChangeOperation::AddLike { user, comment });
                        inserted += 1;
                    }
                } else if user_ids.len() >= 2 {
                    // New friendship.
                    if let Some((a, b)) = sample_distinct_pair(&user_popularity, &mut self.rng) {
                        let (ua, ub) = (user_ids[a], user_ids[b]);
                        let key = (ua.min(ub), ua.max(ub));
                        if existing_friendships.insert(key) {
                            operations.push(ChangeOperation::AddFriendship { a: ua, b: ub });
                            inserted += 1;
                        }
                    }
                } else {
                    break;
                }
            }

            remaining = remaining.saturating_sub(inserted);
            changesets.push(ChangeSet { operations });
        }
        changesets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_has_requested_shape() {
        let cfg = GeneratorConfig::tiny(1);
        let workload = generate_workload(&cfg);
        assert_eq!(workload.initial.users.len(), cfg.users);
        assert_eq!(workload.initial.posts.len(), cfg.posts);
        assert_eq!(workload.initial.comments.len(), cfg.comments);
        assert_eq!(workload.changesets.len(), cfg.changesets);
        assert!(workload.total_inserted_elements() > 0);
    }

    #[test]
    fn workload_is_deterministic() {
        let cfg = GeneratorConfig::tiny(99);
        assert_eq!(generate_workload(&cfg), generate_workload(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_workload(&GeneratorConfig::tiny(1));
        let b = generate_workload(&GeneratorConfig::tiny(2));
        assert_ne!(a, b);
    }

    #[test]
    fn comment_trees_are_well_formed() {
        let workload = generate_workload(&GeneratorConfig::tiny(5));
        let network = &workload.initial;
        let post_ids: std::collections::HashSet<_> = network.posts.iter().map(|p| p.id).collect();
        let comment_by_id: std::collections::HashMap<_, _> =
            network.comments.iter().map(|c| (c.id, c)).collect();
        for c in &network.comments {
            assert!(post_ids.contains(&c.root_post), "rootPost must be a post");
            // the parent is either the root post or another comment with the same root
            if c.parent != c.root_post {
                let parent = comment_by_id
                    .get(&c.parent)
                    .expect("parent comment must exist");
                assert_eq!(parent.root_post, c.root_post);
                assert!(parent.id < c.id, "parents are created before children");
            }
        }
    }

    #[test]
    fn friendships_have_no_self_loops_or_duplicates() {
        let workload = generate_workload(&GeneratorConfig::tiny(7));
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &workload.initial.friendships {
            assert_ne!(a, b);
            assert!(seen.insert((a.min(b), a.max(b))), "duplicate friendship");
        }
    }

    #[test]
    fn likes_reference_existing_users_and_comments() {
        let workload = generate_workload(&GeneratorConfig::tiny(9));
        let network = &workload.initial;
        let user_ids: std::collections::HashSet<_> = network.users.iter().map(|u| u.id).collect();
        let comment_ids: std::collections::HashSet<_> =
            network.comments.iter().map(|c| c.id).collect();
        for &(u, c) in &network.likes {
            assert!(user_ids.contains(&u));
            assert!(comment_ids.contains(&c));
        }
    }

    #[test]
    fn changeset_references_stay_valid_when_applied_in_order() {
        let workload = generate_workload(&GeneratorConfig::tiny(11));
        let mut network = workload.initial.clone();
        for cs in &workload.changesets {
            for op in &cs.operations {
                match op {
                    ChangeOperation::AddComment { comment } => {
                        let known_submission = network.posts.iter().any(|p| p.id == comment.parent)
                            || network.comments.iter().any(|c| c.id == comment.parent);
                        assert!(known_submission, "parent must already exist");
                    }
                    ChangeOperation::AddLike { comment, .. } => {
                        // may be a comment added earlier in this same changeset
                        let known = network.comments.iter().any(|c| c.id == *comment)
                            || cs.operations.iter().any(|o| matches!(o, ChangeOperation::AddComment { comment: c } if c.id == *comment));
                        assert!(known, "liked comment must exist");
                    }
                    _ => {}
                }
            }
            crate::model::apply_changeset(&mut network, cs);
        }
    }

    #[test]
    fn ids_are_unique_across_the_whole_workload() {
        let workload = generate_workload(&GeneratorConfig::tiny(13));
        let mut ids = std::collections::HashSet::new();
        let network = workload.final_network();
        for u in &network.users {
            assert!(ids.insert(u.id));
        }
        for p in &network.posts {
            assert!(ids.insert(p.id));
        }
        for c in &network.comments {
            assert!(ids.insert(c.id));
        }
    }

    #[test]
    fn scale_factor_counts_track_table2_within_tolerance() {
        // Use the smallest paper scale factor to keep the test fast.
        let workload = generate_scale_factor(1);
        let nodes = workload.initial.node_count() as f64;
        let edges = workload.initial.edge_count() as f64;
        assert!((nodes - 1274.0).abs() / 1274.0 < 0.15, "nodes = {nodes}");
        assert!((edges - 2533.0).abs() / 2533.0 < 0.20, "edges = {edges}");
        let inserts = workload.total_inserted_elements();
        assert!((40..=140).contains(&inserts), "inserts = {inserts}");
    }
}
