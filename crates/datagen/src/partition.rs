//! Pluggable shard-partition policies for the sharded streaming pipeline.
//!
//! The first sharded pipeline hardwired `user_id mod N`
//! ([`crate::stream::shard_of_user`]) into every component that assigns work to
//! shards. That is a fine default, but it is also a *policy*, and the ROADMAP's
//! rebalancing item needs to change it at runtime: a hot discussion tree skews
//! its owning shard, and the only fix under a frozen modulo map is to re-shard
//! the world. This module turns the policy into a value:
//!
//! * [`ModuloPartitioner`] — the classic `user % N`. Zero state, perfectly
//!   uniform over dense user ids, the default everywhere.
//! * [`RingPartitioner`] — a seeded consistent-hash ring with virtual nodes.
//!   Assignments are a pure function of `(seed, user)`, stay mostly stable when
//!   the shard count changes, and decorrelate shard load from any arithmetic
//!   structure in the id space (dense sequential ids hash apart).
//! * [`AssignmentTable`] — explicit per-user overrides layered over any base
//!   policy. This is the one policy that supports [`Partitioner::reassign`],
//!   which is what tree-migration rebalancing records its decisions in: after a
//!   hot tree moves, its author's *future* posts follow it to the recipient
//!   shard.
//!
//! Consumers hold a `Box<dyn Partitioner>` and route **every** ownership
//! decision through it. Note the split of responsibilities with the shard
//! router (`ttc_social_media::shard::ShardRouter`): the partitioner answers
//! "which shard should own new work keyed on this user", while the router's
//! sticky post/comment maps answer "which shard *does* own this existing
//! submission" — existing trees never implicitly move when the policy changes,
//! they move only through explicit migration.
//!
//! The generator's shard-aware emission grouping (`StreamConfig::shards`) keeps
//! using the modulo function: grouping is a locality hint, proven
//! semantics-preserving for any consumer, not an ownership decision.

use std::fmt;

use crate::model::ElementId;
use std::collections::HashMap;

/// A shard-assignment policy: the injected answer to "which shard owns work
/// keyed on this user id".
///
/// Implementations must be deterministic (the differential gates replay runs)
/// and total over the full id space. `Send + Sync` so one policy value can be
/// shared with the stage threads of the pipelined engine; `Debug` so routers
/// embedding a policy stay debuggable.
pub trait Partitioner: fmt::Debug + Send + Sync {
    /// The shard owning `user`. Must return a value `< self.shard_count()`.
    fn shard_of(&self, user: ElementId) -> usize;

    /// Number of shards this policy partitions over (always ≥ 1).
    fn shard_count(&self) -> usize;

    /// Short policy name for reports and solution labels (`"mod"`, `"ring"`,
    /// `"table"`).
    fn name(&self) -> &'static str;

    /// Redirect future assignments of `user` to `shard`. Returns `false` when
    /// the policy is static and cannot record the override (the default);
    /// [`AssignmentTable`] returns `true`. Callers migrating data must treat
    /// `false` as "the move happened but future work keyed on this user stays
    /// with the old policy".
    fn reassign(&mut self, user: ElementId, shard: usize) -> bool {
        let _ = (user, shard);
        false
    }

    /// Record a **shard-granularity** move: every assignment that would land on
    /// `from` lands on `to` instead. This is the move a crash restore performs —
    /// the replacement evaluator re-owns the dead shard's entire slice at once —
    /// and the move elastic resharding will perform when a restore targets a
    /// spare shard index instead of restoring in place (`from == to`, which
    /// clears any previous redirect of `from`). Returns `false` when the policy
    /// is static and cannot record the move (the default); [`AssignmentTable`]
    /// returns `true`.
    fn redirect_shard(&mut self, from: usize, to: usize) -> bool {
        let _ = (from, to);
        false
    }

    /// Re-instantiate this policy over `new_count` shards (`0` is treated
    /// as 1) — the partitioner half of an elastic reshard. The returned
    /// policy must keep every property the original had *except* the count:
    ///
    /// * [`ModuloPartitioner`] becomes `user % new_count` (almost every key
    ///   moves — the price of the zero-state policy);
    /// * [`RingPartitioner`] re-places virtual nodes over the new count under
    ///   the **same seed**. Point placement hashes `(seed, shard, replica)`
    ///   and never the count, so a resize only adds or removes the points of
    ///   the shards that appeared or disappeared: ≈ `1/N` of keys move.
    /// * [`AssignmentTable`] resizes its base and re-files the overlays:
    ///   per-user overrides and shard redirects whose target still exists are
    ///   kept, ones pointing at a removed shard are dropped (the slice they
    ///   redirected is re-owned by the new topology's own assignment).
    fn resize(&self, new_count: usize) -> Box<dyn Partitioner>;

    /// Clone into a fresh boxed policy (trait objects cannot derive `Clone`).
    fn clone_box(&self) -> Box<dyn Partitioner>;
}

impl Clone for Box<dyn Partitioner> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The canonical static policy: `user % shards` — see
/// [`crate::stream::shard_of_user`], which this wraps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModuloPartitioner {
    shards: usize,
}

impl ModuloPartitioner {
    /// Create a modulo policy over `shards` shards (`0` is treated as 1).
    pub fn new(shards: usize) -> Self {
        ModuloPartitioner {
            shards: shards.max(1),
        }
    }
}

impl Partitioner for ModuloPartitioner {
    fn shard_of(&self, user: ElementId) -> usize {
        crate::stream::shard_of_user(user, self.shards)
    }

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn name(&self) -> &'static str {
        "mod"
    }

    fn resize(&self, new_count: usize) -> Box<dyn Partitioner> {
        Box::new(ModuloPartitioner::new(new_count))
    }

    fn clone_box(&self) -> Box<dyn Partitioner> {
        Box::new(*self)
    }
}

/// SplitMix64: a tiny, seedable mixer with full avalanche — the same generator
/// the pipeline's delay injection uses. Good enough to place ring points and
/// hash keys; not cryptographic, which a partition function does not need.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded consistent-hash ring with virtual nodes.
///
/// Each shard owns [`RingPartitioner::VIRTUAL_NODES`] points on a `u64` ring,
/// placed by hashing `(seed, shard, replica)`; a user is assigned to the shard
/// owning the first point at or after the user's own hash (wrapping). The
/// properties the pipeline cares about:
///
/// * **Determinism**: assignments are a pure function of `(seed, user)` — the
///   differential gates can replay a ring-partitioned run bit-for-bit.
/// * **Id-structure independence**: modulo maps dense sequential user ids
///   round-robin, which correlates shard load with id-assignment order; the
///   ring hashes that structure away.
/// * **Stability under resizing**: adding a shard only claims the key ranges
///   of its own points, moving `≈ 1/N` of users instead of almost all of them
///   (the classic consistent-hashing argument) — groundwork for elastic shard
///   counts, though the engines currently fix `N` per run.
#[derive(Clone, Debug)]
pub struct RingPartitioner {
    shards: usize,
    seed: u64,
    /// Ring points sorted by position: `(position, shard)`.
    points: Vec<(u64, usize)>,
}

impl RingPartitioner {
    /// Virtual nodes per shard. 64 keeps the maximum expected key-range
    /// imbalance within a few percent for small shard counts while the ring
    /// stays tiny (`N · 64` entries, binary-searched).
    pub const VIRTUAL_NODES: usize = 64;

    /// Create a seeded ring over `shards` shards (`0` is treated as 1).
    pub fn new(shards: usize, seed: u64) -> Self {
        let shards = shards.max(1);
        let mut points: Vec<(u64, usize)> = (0..shards)
            .flat_map(|shard| {
                (0..Self::VIRTUAL_NODES).map(move |replica| {
                    let position =
                        splitmix64(seed ^ splitmix64((shard as u64) << 32 | replica as u64));
                    (position, shard)
                })
            })
            .collect();
        points.sort_unstable();
        RingPartitioner {
            shards,
            seed,
            points,
        }
    }

    /// The ring's seed (assignments are a pure function of `(seed, user)`).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Partitioner for RingPartitioner {
    fn shard_of(&self, user: ElementId) -> usize {
        let key = splitmix64(self.seed.wrapping_add(0x5eed) ^ splitmix64(user));
        let at = self.points.partition_point(|&(position, _)| position < key);
        // wrap: a key beyond the last point belongs to the first point's shard
        self.points[at % self.points.len()].1
    }

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn name(&self) -> &'static str {
        "ring"
    }

    fn resize(&self, new_count: usize) -> Box<dyn Partitioner> {
        // point placement hashes (seed, shard, replica), never the count, so
        // rebuilding under the same seed re-places only the points of shards
        // that appeared or disappeared — the ≈1/N movement guarantee
        Box::new(RingPartitioner::new(new_count, self.seed))
    }

    fn clone_box(&self) -> Box<dyn Partitioner> {
        Box::new(self.clone())
    }
}

/// Explicit per-user overrides over any base policy — the policy that makes
/// migration *stick*.
///
/// Every lookup first consults the override table, then falls back to the base
/// policy, so an empty table behaves exactly like its base.
/// [`Partitioner::reassign`] records an override (and returns `true`), which
/// is how tree-migration rebalancing redirects a migrated tree's author: the
/// moved tree itself is re-owned via the router's sticky maps, while the table
/// makes the author's *future* posts land on the recipient shard instead of
/// bouncing back to the donor.
#[derive(Clone, Debug)]
pub struct AssignmentTable {
    base: Box<dyn Partitioner>,
    overrides: HashMap<ElementId, usize>,
    /// Shard-granularity redirects recorded by [`Partitioner::redirect_shard`],
    /// applied *after* the per-user layer: a crash restore (or, later, an
    /// elastic reshard) moves a whole shard's slice with one entry instead of
    /// one override per user. One hop only — callers composing moves record the
    /// pre-resolved target.
    redirects: HashMap<usize, usize>,
}

impl AssignmentTable {
    /// Create an empty table over `base` (behaves like `base` until the first
    /// [`Partitioner::reassign`]).
    pub fn new(base: Box<dyn Partitioner>) -> Self {
        AssignmentTable {
            base,
            overrides: HashMap::new(),
            redirects: HashMap::new(),
        }
    }

    /// Number of explicit overrides currently recorded.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Number of shard-granularity redirects currently recorded.
    pub fn redirect_count(&self) -> usize {
        self.redirects.len()
    }
}

impl Partitioner for AssignmentTable {
    fn shard_of(&self, user: ElementId) -> usize {
        let shard = self
            .overrides
            .get(&user)
            .copied()
            .unwrap_or_else(|| self.base.shard_of(user));
        self.redirects.get(&shard).copied().unwrap_or(shard)
    }

    fn shard_count(&self) -> usize {
        self.base.shard_count()
    }

    fn name(&self) -> &'static str {
        "table"
    }

    fn reassign(&mut self, user: ElementId, shard: usize) -> bool {
        assert!(
            shard < self.shard_count(),
            "reassign target shard {shard} out of range (shards: {})",
            self.shard_count()
        );
        self.overrides.insert(user, shard);
        true
    }

    fn redirect_shard(&mut self, from: usize, to: usize) -> bool {
        assert!(
            from < self.shard_count() && to < self.shard_count(),
            "redirect {from} -> {to} out of range (shards: {})",
            self.shard_count()
        );
        if from == to {
            // restoring in place: the shard is live again at its own index, so
            // any previous redirect away from it no longer applies
            self.redirects.remove(&from);
        } else {
            self.redirects.insert(from, to);
        }
        true
    }

    fn resize(&self, new_count: usize) -> Box<dyn Partitioner> {
        let new_count = new_count.max(1);
        let overrides = self
            .overrides
            .iter()
            .filter(|&(_, &shard)| shard < new_count)
            .map(|(&user, &shard)| (user, shard))
            .collect();
        let redirects = self
            .redirects
            .iter()
            .filter(|&(&from, &to)| from < new_count && to < new_count)
            .map(|(&from, &to)| (from, to))
            .collect();
        Box::new(AssignmentTable {
            base: self.base.resize(new_count),
            overrides,
            redirects,
        })
    }

    fn clone_box(&self) -> Box<dyn Partitioner> {
        Box::new(self.clone())
    }
}

/// Build the partition policy named on a CLI (`stream_throughput
/// --partitioner`, the bench gate's grid): `"mod"`/`"modulo"` or `"ring"`,
/// over `shards` shards. `rebalance` wraps the base in an [`AssignmentTable`]
/// so migrations can record overrides. Returns `None` for unknown names (the
/// caller owns the error message and exit path).
pub fn partitioner_from_name(
    name: &str,
    shards: usize,
    seed: u64,
    rebalance: bool,
) -> Option<Box<dyn Partitioner>> {
    let base: Box<dyn Partitioner> = match name {
        "mod" | "modulo" => Box::new(ModuloPartitioner::new(shards)),
        "ring" => Box::new(RingPartitioner::new(shards, seed)),
        _ => return None,
    };
    Some(if rebalance {
        Box::new(AssignmentTable::new(base))
    } else {
        base
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::shard_of_user;

    #[test]
    fn modulo_matches_the_canonical_function() {
        let p = ModuloPartitioner::new(4);
        for user in [0u64, 1, 5, 17, 1 << 40] {
            assert_eq!(p.shard_of(user), shard_of_user(user, 4));
            assert!(p.shard_of(user) < p.shard_count());
        }
        assert_eq!(p.name(), "mod");
        // zero shards degrades to one instead of dividing by zero
        assert_eq!(ModuloPartitioner::new(0).shard_count(), 1);
        assert_eq!(ModuloPartitioner::new(0).shard_of(9), 0);
    }

    #[test]
    fn modulo_rejects_reassignment() {
        let mut p = ModuloPartitioner::new(4);
        assert!(!p.reassign(7, 2));
        assert_eq!(p.shard_of(7), 3, "a refused reassign must not change state");
    }

    #[test]
    fn ring_is_deterministic_and_total() {
        let a = RingPartitioner::new(4, 42);
        let b = RingPartitioner::new(4, 42);
        for user in 0..500u64 {
            let shard = a.shard_of(user);
            assert!(shard < 4);
            assert_eq!(shard, b.shard_of(user), "same seed, same assignment");
        }
        let other_seed = RingPartitioner::new(4, 43);
        assert!(
            (0..500u64).any(|u| a.shard_of(u) != other_seed.shard_of(u)),
            "different seeds must place at least some users differently"
        );
        assert_eq!(a.seed(), 42);
        assert_eq!(a.name(), "ring");
    }

    #[test]
    fn ring_load_is_roughly_balanced_over_dense_ids() {
        let shards = 4;
        let users = 4000u64;
        let ring = RingPartitioner::new(shards, 7);
        let mut counts = vec![0usize; shards];
        for user in 0..users {
            counts[ring.shard_of(user)] += 1;
        }
        let expected = users as usize / shards;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > expected / 2 && count < expected * 2,
                "shard {shard} holds {count} of {users} users (expected ≈ {expected})"
            );
        }
    }

    #[test]
    fn ring_resizing_moves_a_minority_of_keys() {
        let before = RingPartitioner::new(4, 11);
        let after = RingPartitioner::new(5, 11);
        let users = 2000u64;
        let moved = (0..users)
            .filter(|&u| before.shard_of(u) != after.shard_of(u))
            .count();
        // consistent hashing: going 4 → 5 shards should move ≈ 1/5 of keys,
        // not the ≈ 4/5 a modulo re-map would
        assert!(
            moved < users as usize / 2,
            "resizing moved {moved} of {users} keys — not consistent"
        );
    }

    #[test]
    fn assignment_table_overrides_and_falls_back() {
        let mut table = AssignmentTable::new(Box::new(ModuloPartitioner::new(4)));
        assert_eq!(table.shard_of(6), 2, "empty table behaves like its base");
        assert_eq!(table.override_count(), 0);
        assert!(table.reassign(6, 0));
        assert_eq!(table.shard_of(6), 0, "override wins");
        assert_eq!(table.shard_of(7), 3, "other users still fall back");
        assert_eq!(table.override_count(), 1);
        assert_eq!(table.name(), "table");
        let cloned = table.clone_box();
        assert_eq!(cloned.shard_of(6), 0, "overrides survive clone_box");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignment_table_rejects_out_of_range_shards() {
        let mut table = AssignmentTable::new(Box::new(ModuloPartitioner::new(2)));
        table.reassign(1, 5);
    }

    #[test]
    fn shard_redirects_move_whole_slices_and_compose_with_overrides() {
        let mut table = AssignmentTable::new(Box::new(ModuloPartitioner::new(4)));
        // base: user u lands on u % 4
        assert!(table.redirect_shard(2, 0), "tables record shard moves");
        assert_eq!(table.redirect_count(), 1);
        for user in [2u64, 6, 10, 1 << 20 | 2] {
            assert_eq!(table.shard_of(user), 0, "all of shard 2's slice moved");
        }
        assert_eq!(table.shard_of(3), 3, "other shards untouched");
        // the per-user layer resolves first, then the shard layer
        assert!(table.reassign(5, 2));
        assert_eq!(
            table.shard_of(5),
            0,
            "an override into a redirected shard follows the redirect"
        );
        // restoring in place clears the redirect
        assert!(table.redirect_shard(2, 2));
        assert_eq!(table.redirect_count(), 0);
        assert_eq!(table.shard_of(6), 2, "shard 2 owns its slice again");
        assert_eq!(table.shard_of(5), 2, "the user-level override survives");
        let cloned = table.clone_box();
        assert_eq!(cloned.shard_of(6), 2, "redirect state survives clone_box");
    }

    #[test]
    fn static_policies_refuse_shard_redirects() {
        let mut modulo = ModuloPartitioner::new(4);
        assert!(!modulo.redirect_shard(1, 0));
        assert_eq!(modulo.shard_of(1), 1, "refused redirects change nothing");
        let mut ring = RingPartitioner::new(4, 42);
        assert!(!ring.redirect_shard(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignment_table_rejects_out_of_range_redirects() {
        let mut table = AssignmentTable::new(Box::new(ModuloPartitioner::new(2)));
        table.redirect_shard(0, 7);
    }

    #[test]
    fn resize_rebuilds_each_policy_over_the_new_count() {
        // modulo: a fresh modulo over the new count
        let resized = ModuloPartitioner::new(2).resize(4);
        assert_eq!(resized.shard_count(), 4);
        assert_eq!(resized.name(), "mod");
        assert_eq!(resized.shard_of(6), shard_of_user(6, 4));
        // zero degrades to one, mirroring the constructors
        assert_eq!(ModuloPartitioner::new(2).resize(0).shard_count(), 1);

        // ring: seed preserved, so resize equals a fresh ring at the new count
        let ring = RingPartitioner::new(4, 11);
        let resized = ring.resize(5);
        assert_eq!(resized.shard_count(), 5);
        let fresh = RingPartitioner::new(5, 11);
        for user in 0..500u64 {
            assert_eq!(
                resized.shard_of(user),
                fresh.shard_of(user),
                "resize must equal a fresh ring under the same seed"
            );
        }
    }

    #[test]
    fn ring_resize_through_the_trait_moves_a_minority_of_keys() {
        let before: Box<dyn Partitioner> = Box::new(RingPartitioner::new(4, 11));
        let after = before.resize(5);
        let users = 2000u64;
        let moved = (0..users)
            .filter(|&u| before.shard_of(u) != after.shard_of(u))
            .count();
        assert!(
            moved < users as usize / 2,
            "resizing moved {moved} of {users} keys — not consistent"
        );
    }

    #[test]
    fn assignment_table_resize_keeps_valid_overlays_and_drops_stale_ones() {
        let mut table = AssignmentTable::new(Box::new(ModuloPartitioner::new(4)));
        assert!(table.reassign(5, 2)); // survives a shrink to 3
        assert!(table.reassign(6, 3)); // points at a removed shard
        assert!(table.redirect_shard(1, 2)); // survives
        assert!(table.redirect_shard(2, 3)); // target removed
        let resized = table.resize(3);
        assert_eq!(resized.shard_count(), 3);
        assert_eq!(resized.name(), "table");
        // kept override: user 5 still pinned to shard 2
        assert_eq!(resized.shard_of(5), 2);
        // dropped override: user 6 falls back to the resized base (6 % 3)
        assert_eq!(resized.shard_of(6), 0);
        // kept redirect: shard 1's slice still lands on shard 2
        assert_eq!(resized.shard_of(4), 2);
        // dropped redirect: shard 2's slice is its own again (5 % 3 == 2 via
        // the override above; use user 8 ≡ 2 (mod 3) for the base path)
        assert_eq!(resized.shard_of(8), 2);
    }

    #[test]
    fn named_policies_resolve_for_the_cli() {
        assert_eq!(
            partitioner_from_name("mod", 4, 0, false)
                .expect("known")
                .name(),
            "mod"
        );
        assert_eq!(
            partitioner_from_name("ring", 4, 9, false)
                .expect("known")
                .name(),
            "ring"
        );
        let wrapped = partitioner_from_name("modulo", 4, 0, true).expect("known");
        assert_eq!(wrapped.name(), "table", "--rebalance wraps in a table");
        assert_eq!(wrapped.shard_count(), 4);
        assert!(partitioner_from_name("nope", 4, 0, false).is_none());
    }
}
