//! Scale-factor calibration.
//!
//! The paper benchmarks graphs whose sizes follow powers of two (Table II). The
//! original data was produced by the LDBC Datagen; offline we synthesise graphs whose
//! node / edge / insert counts track the same table. The constants below were fitted
//! to Table II: at scale factor `sf` the generated network has roughly `840·sf` nodes
//! and `2250·sf` edges, and the update phase inserts 45–132 elements regardless of the
//! graph size (as in the paper, where updates are small).

use serde::{Deserialize, Serialize};

/// Table II of the paper: `(scale factor, #nodes, #edges, #inserts)` as reported.
pub const PAPER_TABLE2: &[(u64, u64, u64, u64)] = &[
    (1, 1274, 2533, 67),
    (2, 2071, 4207, 120),
    (4, 4350, 9118, 132),
    (8, 7530, 18_000, 104),
    (16, 15_000, 35_000, 110),
    (32, 30_000, 71_000, 117),
    (64, 58_000, 143_000, 68),
    (128, 115_000, 287_000, 86),
    (256, 225_000, 568_000, 45),
    (512, 443_000, 1_100_000, 112),
    (1024, 859_000, 2_300_000, 74),
];

/// Configuration of a synthetic workload for one scale factor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Scale factor (powers of two in the paper, any positive integer here).
    pub scale_factor: u64,
    /// Number of users in the initial network.
    pub users: usize,
    /// Number of posts in the initial network.
    pub posts: usize,
    /// Number of comments in the initial network.
    pub comments: usize,
    /// Number of undirected friendship pairs in the initial network.
    pub friendships: usize,
    /// Number of likes edges in the initial network.
    pub likes: usize,
    /// Number of changesets in the update phase.
    pub changesets: usize,
    /// Total number of inserted elements across all changesets.
    pub total_inserts: usize,
    /// Zipf-like skew of the popularity distributions (larger = more skewed).
    pub skew: f64,
    /// RNG seed; the same seed always produces the same workload.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Calibrated configuration for a scale factor, tracking the paper's Table II.
    pub fn for_scale_factor(scale_factor: u64) -> Self {
        let sf = scale_factor.max(1) as usize;
        // Node mix roughly follows the LDBC proportions used by the case study:
        // many comments, fewer users, fewest posts.
        let users = 220 * sf + 260;
        let posts = 70 * sf + 60;
        let comments = 550 * sf + 100;
        // Edges: each comment already contributes 2 edges (parent + rootPost).
        let friendships = 560 * sf + 50;
        let likes = 580 * sf + 50;
        // Updates are small and roughly constant in size (Table II: 45..132);
        // derive a deterministic value in that range from the scale factor.
        let total_inserts = 45 + ((scale_factor.wrapping_mul(37) + 11) % 88) as usize;
        GeneratorConfig {
            scale_factor,
            users,
            posts,
            comments,
            friendships,
            likes,
            changesets: 10,
            total_inserts,
            skew: 0.9,
            seed: 0x077C_2018 ^ scale_factor,
        }
    }

    /// A very small configuration for unit tests and examples (~tens of elements).
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            scale_factor: 0,
            users: 12,
            posts: 4,
            comments: 24,
            friendships: 14,
            likes: 30,
            changesets: 3,
            total_inserts: 18,
            skew: 0.9,
            seed,
        }
    }

    /// Expected number of nodes of the generated initial network.
    pub fn expected_nodes(&self) -> usize {
        self.users + self.posts + self.comments
    }

    /// Expected number of edges of the generated initial network.
    pub fn expected_edges(&self) -> usize {
        2 * self.comments + self.friendships + self.likes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor_one_tracks_table2() {
        let cfg = GeneratorConfig::for_scale_factor(1);
        let (_, nodes, edges, _) = PAPER_TABLE2[0];
        let n = cfg.expected_nodes() as f64;
        let e = cfg.expected_edges() as f64;
        assert!(
            (n - nodes as f64).abs() / (nodes as f64) < 0.15,
            "nodes {n} vs {nodes}"
        );
        assert!(
            (e - edges as f64).abs() / (edges as f64) < 0.15,
            "edges {e} vs {edges}"
        );
    }

    #[test]
    fn scale_factor_1024_tracks_table2() {
        let cfg = GeneratorConfig::for_scale_factor(1024);
        let (_, nodes, edges, _) = PAPER_TABLE2[10];
        let n = cfg.expected_nodes() as f64;
        let e = cfg.expected_edges() as f64;
        assert!(
            (n - nodes as f64).abs() / (nodes as f64) < 0.15,
            "nodes {n} vs {nodes}"
        );
        assert!(
            (e - edges as f64).abs() / (edges as f64) < 0.15,
            "edges {e} vs {edges}"
        );
    }

    #[test]
    fn inserts_stay_in_paper_range() {
        for sf in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
            let cfg = GeneratorConfig::for_scale_factor(sf);
            assert!(
                (45..=132).contains(&cfg.total_inserts),
                "sf={sf} inserts={}",
                cfg.total_inserts
            );
        }
    }

    #[test]
    fn doubling_scale_factor_roughly_doubles_size() {
        let a = GeneratorConfig::for_scale_factor(64);
        let b = GeneratorConfig::for_scale_factor(128);
        let ratio = b.expected_nodes() as f64 / a.expected_nodes() as f64;
        assert!(ratio > 1.8 && ratio < 2.2);
    }

    #[test]
    fn configs_are_deterministic() {
        assert_eq!(
            GeneratorConfig::for_scale_factor(8),
            GeneratorConfig::for_scale_factor(8)
        );
    }

    #[test]
    fn tiny_config_is_small() {
        let cfg = GeneratorConfig::tiny(1);
        assert!(cfg.expected_nodes() < 100);
        assert!(cfg.changesets >= 1);
    }
}
