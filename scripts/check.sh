#!/usr/bin/env sh
# Repository check: what CI runs (see .github/workflows/ci.yml).
#
#   ./scripts/check.sh          # build + lint + tests + docs
#
# Fails on the first broken step. `cargo doc` runs with warnings denied so the
# broken-intra-doc-link class of error (the reason DESIGN.md exists) is caught.
# Lints are denied too: the tree must stay clippy- and rustfmt-clean, vendored
# stand-ins included.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy --features model-check (shadow-primitive build)"
cargo clippy -p ttc-social-media --all-targets --features model-check -- -D warnings

echo "==> xtask lint (panic/index/send/lock policy + crate hygiene)"
cargo run -q -p xtask -- lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --benches"
cargo build --release --benches

echo "==> cargo test -q"
cargo test -q

echo "==> model check (exhaustive bounded interleavings of the recovery protocol)"
# release: each schedule explores ~100k executions of the full pipelined
# engine; debug is ~5x slower. The suite asserts exploration completeness.
cargo test --release -q -p ttc-social-media --features model-check --test model_check

echo "==> model check finds the reverted absorbed-exit bug"
cargo test --release -q -p ttc-social-media \
    --features model-check,test-bug-absorbed-exit --test model_check

echo "==> model check finds the reverted mid-replay undercount bug"
cargo test --release -q -p ttc-social-media \
    --features model-check,test-bug-midreplay-undercount --test model_check

echo "==> stream_throughput --smoke (panics in kernels/drivers fail the gate)"
cargo run --release -p bench --bin stream_throughput -- --smoke > /dev/null

echo "==> stream_throughput --smoke --shards 2 (sharded pipeline smoke)"
cargo run --release -p bench --bin stream_throughput -- --smoke --shards 2 > /dev/null

echo "==> stream_throughput --smoke --pipeline (staged async pipeline smoke)"
cargo run --release -p bench --bin stream_throughput -- --smoke --pipeline > /dev/null

echo "==> stream_throughput rebalancing smoke (ring partitioner + skew monitor on a hot-tree stream)"
cargo run --release -p bench --bin stream_throughput -- --smoke --shards 2 \
    --partitioner ring --rebalance --hot-tree 0.7 > /dev/null

echo "==> stream_throughput recovery chaos smoke (kill shard 1 mid-run + restore, 3 seeds)"
for seed in 7 42 1337; do
    cargo run --release -p bench --bin stream_throughput -- --smoke --pipeline \
        --kill-shard 1 --recover --seed "$seed" > /dev/null
done

echo "==> stream_throughput reshard smoke (live 2 -> 4 reshard at the halfway barrier)"
cargo run --release -p bench --bin stream_throughput -- --smoke --pipeline \
    --reshard 6:4 > /dev/null

echo "==> serve_throughput --smoke (epoch-published read path under concurrent readers)"
cargo run --release -p bench --bin serve_throughput -- --smoke > /dev/null

echo "==> ablation benches, quick mode (kernel variants must run, differential panics fail)"
ABLATION_SPGEMM_QUICK=1 cargo bench -p bench --bench ablation_spgemm -- --quick > /dev/null
ABLATION_DYNMAT_QUICK=1 cargo bench -p bench --bench ablation_dynamic_matrix -- --quick > /dev/null

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "All checks passed."
