#!/usr/bin/env sh
# Repository check: what CI should run.
#
#   ./scripts/check.sh          # build + tests + docs
#
# Fails on the first broken step. `cargo doc` runs with warnings denied so the
# broken-intra-doc-link class of error (the reason DESIGN.md exists) is caught.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --benches"
cargo build --release --benches

echo "==> cargo test -q"
cargo test -q

echo "==> stream_throughput --smoke (panics in kernels/drivers fail the gate)"
cargo run --release -p bench --bin stream_throughput -- --smoke > /dev/null

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "All checks passed."
