#!/usr/bin/env sh
# Repository check: what CI runs (see .github/workflows/ci.yml).
#
#   ./scripts/check.sh          # build + lint + tests + docs
#
# Fails on the first broken step. `cargo doc` runs with warnings denied so the
# broken-intra-doc-link class of error (the reason DESIGN.md exists) is caught.
# Lints are denied too: the tree must stay clippy- and rustfmt-clean, vendored
# stand-ins included.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --benches"
cargo build --release --benches

echo "==> cargo test -q"
cargo test -q

echo "==> stream_throughput --smoke (panics in kernels/drivers fail the gate)"
cargo run --release -p bench --bin stream_throughput -- --smoke > /dev/null

echo "==> stream_throughput --smoke --shards 2 (sharded pipeline smoke)"
cargo run --release -p bench --bin stream_throughput -- --smoke --shards 2 > /dev/null

echo "==> stream_throughput --smoke --pipeline (staged async pipeline smoke)"
cargo run --release -p bench --bin stream_throughput -- --smoke --pipeline > /dev/null

echo "==> stream_throughput rebalancing smoke (ring partitioner + skew monitor on a hot-tree stream)"
cargo run --release -p bench --bin stream_throughput -- --smoke --shards 2 \
    --partitioner ring --rebalance --hot-tree 0.7 > /dev/null

echo "==> stream_throughput recovery chaos smoke (kill shard 1 mid-run + restore, 3 seeds)"
for seed in 7 42 1337; do
    cargo run --release -p bench --bin stream_throughput -- --smoke --pipeline \
        --kill-shard 1 --recover --seed "$seed" > /dev/null
done

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "All checks passed."
