#!/usr/bin/env sh
# Perf-regression gate: measure streaming throughput and the SpGEMM ablation in
# quick mode, emit target/BENCH_stream.json.new, and fail if any variant's updates/sec
# dropped more than 20% below the checked-in BENCH_stream.json baseline.
#
#   ./scripts/bench_gate.sh                     # compare against the baseline
#   ./scripts/bench_gate.sh --write-baseline    # refresh BENCH_stream.json
#   BENCH_GATE_TOLERANCE=0.35 ./scripts/bench_gate.sh   # noisier runners
#
# The ablation_spgemm run is a perf smoke (it prints kernel timings to the log
# and fails the gate only if a kernel panics); the throughput comparison is the
# enforced part, implemented by the `bench_gate` binary.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release -p bench"
cargo build --release -p bench --bins --benches

echo "==> ablation_spgemm (quick mode: sf1 only)"
ABLATION_SPGEMM_QUICK=1 cargo bench -p bench --bench ablation_spgemm

echo "==> ablation_dynamic_matrix (quick mode: n=2000 only)"
ABLATION_DYNMAT_QUICK=1 cargo bench -p bench --bench ablation_dynamic_matrix

echo "==> bench_gate (throughput vs BENCH_stream.json)"
cargo run --release -p bench --bin bench_gate -- "$@"
