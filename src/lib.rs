//! Umbrella crate for the TTC 2018 "Social Media" GraphBLAS reproduction.
//!
//! This crate simply re-exports the workspace members so that the repository-level
//! examples and integration tests can use a single dependency:
//!
//! * [`graphblas`] — the sparse linear-algebra substrate (GraphBLAS-style API).
//! * [`lagraph`] — graph algorithms (FastSV connected components, BFS, incremental CC).
//! * [`datagen`] — LDBC-Datagen-like synthetic social-network generator.
//! * [`ttc_social_media`] — the paper's contribution: batch and incremental
//!   GraphBLAS solutions for queries Q1 and Q2.
//! * [`nmf_baseline`] — object-model reference baseline (NMF analogue).

pub use datagen;
pub use graphblas;
pub use lagraph;
pub use nmf_baseline;
pub use ttc_social_media;
