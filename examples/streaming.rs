//! Walk-through of the streaming update pipeline: generate a network, attach an
//! unbounded seeded update stream (inserts *and* retractions), and drive
//! micro-batches through the incremental solutions while measuring sustained
//! throughput and per-batch latency percentiles.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use ttc2018_graphblas::datagen::stream::{StreamConfig, UpdateStream};
use ttc2018_graphblas::datagen::{generate_scale_factor, Workload};
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::solution::{
    run_solution, GraphBlasBatch, GraphBlasIncremental,
};
use ttc2018_graphblas::ttc_social_media::stream::{coalesce, StreamDriver, StreamDriverConfig};

fn main() {
    // 1. A synthetic network shaped like the paper's Table II at scale factor 1.
    let network = generate_scale_factor(1).initial;
    println!(
        "network: {} nodes, {} edges",
        network.node_count(),
        network.edge_count()
    );

    // 2. An unbounded, seeded micro-batch stream over it. 10% of the operations
    //    retract existing likes/friendships — traffic the original TTC changesets
    //    never contain.
    let config = StreamConfig {
        seed: 2024,
        batch_size: 48,
        ..StreamConfig::default()
    };
    let mut probe = UpdateStream::new(&network, config.clone());
    let first = probe.next().expect("the stream never ends");
    let merged = coalesce(&first);
    println!(
        "first batch: {} operations ({} removals), {} after coalescing",
        first.operations.len(),
        first.operations.iter().filter(|o| o.is_removal()).count(),
        merged.operations.len(),
    );

    // 3. Drive 100 batches through the incremental solutions of both queries,
    //    with 5 warm-up batches excluded from the statistics.
    let driver = StreamDriver::new(StreamDriverConfig {
        warmup_batches: 5,
        coalesce: true,
    });
    for query in [Query::Q1, Query::Q2] {
        let stream = UpdateStream::new(&network, config.clone());
        let mut solution = GraphBlasIncremental::new(query, false);
        let report = driver.run(&mut solution, &network, stream, 100);
        println!(
            "{:?} / {}: {:.0} updates/s, p50 {:.3} ms, p99 {:.3} ms, top-3 = {}",
            query,
            report.solution,
            report.updates_per_sec,
            report.p50_latency_secs * 1e3,
            report.p99_latency_secs * 1e3,
            report.final_result,
        );
    }

    // 4. Cross-check: replaying the same batches through a full batch
    //    recomputation must land on the same final answer.
    let batches: Vec<_> = UpdateStream::new(&network, config.clone())
        .take(100)
        .collect();
    let mut incremental = GraphBlasIncremental::new(Query::Q2, false);
    let report = driver.run(&mut incremental, &network, batches.iter().cloned(), 100);
    let mut reference = GraphBlasBatch::new(Query::Q2, false);
    let workload = Workload {
        initial: network,
        changesets: batches,
    };
    let expected = run_solution(&mut reference, &workload);
    assert_eq!(Some(&report.final_result), expected.last());
    println!("streamed result verified against batch recomputation ✓");
}
