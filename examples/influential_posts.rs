//! Influential posts on a synthetic social network: drives the Q1 incremental
//! solution over an LDBC-like workload and prints how the top-3 evolves as changesets
//! arrive — the kind of "continuously updated dashboard" workload the paper's
//! introduction motivates (mix of analytical scoring and transactional updates).
//!
//! ```text
//! cargo run --release --example influential_posts [scale_factor]
//! ```

use ttc2018_graphblas::datagen::{generate_scale_factor, GeneratorConfig};
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::solution::{
    GraphBlasBatch, GraphBlasIncremental, Solution,
};

fn main() {
    let scale_factor: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let workload = if scale_factor == 0 {
        ttc2018_graphblas::datagen::generate_workload(&GeneratorConfig::tiny(7))
    } else {
        generate_scale_factor(scale_factor)
    };

    println!(
        "workload: {} nodes, {} edges, {} changesets, {} inserted elements",
        workload.initial.node_count(),
        workload.initial.edge_count(),
        workload.changesets.len(),
        workload.total_inserted_elements()
    );

    let mut incremental = GraphBlasIncremental::new(Query::Q1, false);
    let mut batch = GraphBlasBatch::new(Query::Q1, false);

    let start = std::time::Instant::now();
    let initial = incremental.load_and_initial(&workload.initial);
    let incremental_load = start.elapsed();

    let start = std::time::Instant::now();
    let batch_initial = batch.load_and_initial(&workload.initial);
    let batch_load = start.elapsed();

    assert_eq!(initial, batch_initial, "batch and incremental must agree");
    println!();
    println!("initial top-3 posts: {initial}");
    println!(
        "load + initial evaluation: incremental {:?}, batch {:?}",
        incremental_load, batch_load
    );
    println!();

    let mut incremental_total = std::time::Duration::ZERO;
    let mut batch_total = std::time::Duration::ZERO;
    for (i, changeset) in workload.changesets.iter().enumerate() {
        let start = std::time::Instant::now();
        let result = incremental.update_and_reevaluate(changeset);
        incremental_total += start.elapsed();

        let start = std::time::Instant::now();
        let batch_result = batch.update_and_reevaluate(changeset);
        batch_total += start.elapsed();

        assert_eq!(result, batch_result, "batch and incremental must agree");
        println!(
            "after changeset {:>2} ({:>2} ops): top-3 = {}",
            i + 1,
            changeset.operations.len(),
            result
        );
    }

    println!();
    println!(
        "update + reevaluation totals: incremental {:?}, batch {:?} ({:.1}x)",
        incremental_total,
        batch_total,
        batch_total.as_secs_f64() / incremental_total.as_secs_f64().max(1e-9)
    );
}
