//! Whole-graph analytics over the synthetic social network, exercising the extended
//! LAGraph-style algorithm layer (PageRank, triangle counting, clustering
//! coefficients, k-core decomposition, label-propagation communities, shortest paths)
//! on top of the GraphBLAS substrate — the "graph analytical tools" workload profile
//! the paper's introduction contrasts with transactional graph queries.
//!
//! ```text
//! cargo run --release --example graph_analytics [scale_factor]
//! ```

use std::collections::HashMap;

use ttc2018_graphblas::datagen::generate_scale_factor;
use ttc2018_graphblas::graphblas::ops_traits::First;
use ttc2018_graphblas::graphblas::Matrix;
use ttc2018_graphblas::lagraph::{
    communities, connected_components, degeneracy, global_clustering_coefficient,
    kcore_decomposition, label_propagation, local_clustering_coefficient, pagerank, sssp_hops,
    triangle_count, LabelPropagationOptions, PageRankOptions,
};

fn main() {
    let scale_factor: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let workload = generate_scale_factor(scale_factor);
    let network = workload.final_network();

    // Friendship adjacency matrix over densely re-indexed users.
    let user_index: HashMap<u64, usize> = network
        .users
        .iter()
        .enumerate()
        .map(|(i, u)| (u.id, i))
        .collect();
    let n = network.users.len();
    let mut tuples = Vec::with_capacity(network.friendships.len() * 2);
    for &(a, b) in &network.friendships {
        let (ia, ib) = (user_index[&a], user_index[&b]);
        tuples.push((ia, ib, 1u64));
        tuples.push((ib, ia, 1u64));
    }
    let friends = Matrix::from_tuples(n, n, &tuples, First::new()).expect("indices in range");

    println!(
        "friendship graph at scale factor {scale_factor}: {} users, {} friendships",
        n,
        network.friendships.len()
    );

    // Connected components.
    let labels = connected_components(&friends).expect("square matrix");
    let distinct: std::collections::HashSet<u64> = labels.values().iter().copied().collect();
    println!("connected components: {}", distinct.len());

    // PageRank: the most central users.
    let ranks = pagerank(&friends, PageRankOptions::default()).expect("square matrix");
    let mut ranked: Vec<(usize, f64)> = ranks.iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("top 5 users by PageRank:");
    for (user, score) in ranked.iter().take(5) {
        println!("  user index {user:>6}  rank {score:.6}");
    }

    // Triangles and clustering.
    let triangles = triangle_count(&friends).expect("square matrix");
    let global_cc = global_clustering_coefficient(&friends).expect("square matrix");
    let local_cc = local_clustering_coefficient(&friends).expect("square matrix");
    let mean_local: f64 = if n == 0 {
        0.0
    } else {
        local_cc.values().iter().sum::<f64>() / n as f64
    };
    println!(
        "triangles: {triangles}, global clustering coefficient: {global_cc:.4}, mean local: {mean_local:.4}"
    );

    // k-core structure.
    let cores = kcore_decomposition(&friends).expect("square matrix");
    let degeneracy = degeneracy(&friends).expect("square matrix");
    let in_max_core = cores.values().iter().filter(|&&c| c == degeneracy).count();
    println!("degeneracy (max k-core): {degeneracy}, users in the innermost core: {in_max_core}");

    // Label-propagation communities.
    let community_labels =
        label_propagation(&friends, LabelPropagationOptions::default()).expect("square matrix");
    let groups = communities(&community_labels);
    println!(
        "label-propagation communities: {} (largest has {} users)",
        groups.len(),
        groups.first().map(|g| g.len()).unwrap_or(0)
    );

    // Hop distances from the highest-PageRank user.
    if let Some(&(hub, _)) = ranked.first() {
        let hops = sssp_hops(&friends, hub).expect("valid source");
        let reachable = hops.nvals();
        let max_hops = hops.values().iter().copied().max().unwrap_or(0);
        println!(
            "from the top-PageRank user: {reachable} users reachable, eccentricity {max_hops} hops"
        );
    }
}
