//! Community structure of the friendship graph, using the GraphBLAS substrate and the
//! LAGraph-style algorithm layer directly (no case-study code): builds the `Friends`
//! adjacency matrix of a synthetic network, runs FastSV connected components, reports
//! the component size distribution, and runs a BFS from the most connected user.
//!
//! ```text
//! cargo run --release --example community_detection [scale_factor]
//! ```

use std::collections::HashMap;

use ttc2018_graphblas::datagen::generate_scale_factor;
use ttc2018_graphblas::graphblas::monoid::stock as monoids;
use ttc2018_graphblas::graphblas::ops::reduce_matrix_rows;
use ttc2018_graphblas::graphblas::ops_traits::First;
use ttc2018_graphblas::graphblas::Matrix;
use ttc2018_graphblas::lagraph::{bfs_levels, component_sizes, connected_components};

fn main() {
    let scale_factor: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let workload = generate_scale_factor(scale_factor);
    let network = &workload.initial;

    // Dense user indexing.
    let user_index: HashMap<u64, usize> = network
        .users
        .iter()
        .enumerate()
        .map(|(i, u)| (u.id, i))
        .collect();
    let n = network.users.len();

    // Symmetric friendship matrix.
    let mut tuples = Vec::with_capacity(network.friendships.len() * 2);
    for &(a, b) in &network.friendships {
        let (ia, ib) = (user_index[&a], user_index[&b]);
        tuples.push((ia, ib, 1u64));
        tuples.push((ib, ia, 1u64));
    }
    let friends = Matrix::from_tuples(n, n, &tuples, First::new()).expect("indices in range");

    println!(
        "friendship graph: {} users, {} friendships",
        n,
        network.friendships.len()
    );

    // Connected components via FastSV.
    let labels = connected_components(&friends).expect("square matrix");
    let sizes = component_sizes(&labels);
    let largest = sizes.iter().map(|&(_, s)| s).max().unwrap_or(0);
    let singletons = sizes.iter().filter(|&&(_, s)| s == 1).count();
    println!(
        "connected components: {} (largest = {} users, singletons = {})",
        sizes.len(),
        largest,
        singletons
    );

    // Degree distribution via a row reduction.
    let degrees = reduce_matrix_rows(&friends, monoids::plus::<u64>());
    let max_degree_user = degrees.iter().max_by_key(|&(_, d)| d).unwrap_or((0, 0));
    println!(
        "most connected user: index {} with {} friends",
        max_degree_user.0, max_degree_user.1
    );

    // BFS from the hub: how much of its component is within 2 hops?
    let levels = bfs_levels(&friends, max_degree_user.0).expect("valid source");
    let within_two_hops = levels.iter().filter(|&(_, l)| l <= 2).count();
    println!(
        "BFS from the hub: {} users reachable, {} within 2 hops",
        levels.nvals(),
        within_two_hops
    );

    // A small histogram of component sizes.
    let mut histogram: HashMap<u64, usize> = HashMap::new();
    for &(_, s) in &sizes {
        *histogram.entry(s).or_insert(0) += 1;
    }
    let mut buckets: Vec<(u64, usize)> = histogram.into_iter().collect();
    buckets.sort_unstable();
    println!("component size histogram (size -> count):");
    for (size, count) in buckets.iter().take(10) {
        println!("  {size:>6} -> {count}");
    }
    if buckets.len() > 10 {
        println!("  ... and {} more bucket(s)", buckets.len() - 10);
    }
}
