//! Quickstart: the running example of the paper (Fig. 3a / 3b) end to end.
//!
//! Builds the example social network, answers Q1 ("influential posts") and Q2
//! ("influential comments") with the batch GraphBLAS algorithms, applies the update of
//! Fig. 3b and re-evaluates both queries incrementally.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ttc2018_graphblas::ttc_social_media::graph::{
    paper_example_changeset, paper_example_network, SocialGraph,
};
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::solution::{GraphBlasIncremental, Solution};
use ttc2018_graphblas::ttc_social_media::{q1, q2};

fn main() {
    let network = paper_example_network();
    let graph = SocialGraph::from_network(&network);

    println!("== Initial graph (Fig. 3a) ==");
    println!(
        "posts = {}, comments = {}, users = {}",
        graph.post_count(),
        graph.comment_count(),
        graph.user_count()
    );

    // Q1 batch: score of every post.
    let q1_scores = q1::q1_batch_scores(&graph, false);
    for (post, score) in q1_scores.iter() {
        println!("Q1 score of post {} = {}", graph.post_id(post), score);
    }

    // Q2 batch: score of every comment.
    let q2_scores = q2::q2_batch_scores(&graph, false);
    for (comment, score) in q2_scores.iter() {
        println!(
            "Q2 score of comment {} = {}",
            graph.comment_id(comment),
            score
        );
    }

    // Incremental solutions, exactly as the benchmark drives them.
    let mut q1_solution = GraphBlasIncremental::new(Query::Q1, false);
    let mut q2_solution = GraphBlasIncremental::new(Query::Q2, false);
    println!();
    println!(
        "Q1 initial result: {}",
        q1_solution.load_and_initial(&network)
    );
    println!(
        "Q2 initial result: {}",
        q2_solution.load_and_initial(&network)
    );

    println!();
    println!("== Applying the update of Fig. 3b ==");
    let changeset = paper_example_changeset();
    println!(
        "Q1 after update:   {}",
        q1_solution.update_and_reevaluate(&changeset)
    );
    println!(
        "Q2 after update:   {}",
        q2_solution.update_and_reevaluate(&changeset)
    );
    println!();
    println!("(expected: Q2 moves comment 14 into the top 3, and comment 12's score");
    println!(" rises from 5 to 16 because its likers now form a single component)");
}
