//! A miniature version of the paper's evaluation: run every tool variant (GraphBLAS
//! batch / incremental, serial / parallel, and the NMF-style baselines) on the same
//! synthetic workload, check that they return identical results, and print a small
//! timing table per phase — the same protocol the `figure5` harness runs over the full
//! scale-factor sweep.
//!
//! ```text
//! cargo run --release --example incremental_pipeline [scale_factor]
//! ```

use std::time::Instant;

use ttc2018_graphblas::datagen::generate_scale_factor;
use ttc2018_graphblas::nmf_baseline::{NmfBatch, NmfIncremental};
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::solution::{
    GraphBlasBatch, GraphBlasIncremental, Solution,
};

fn measure(
    solution: &mut dyn Solution,
    workload: &ttc2018_graphblas::datagen::Workload,
) -> (f64, f64, Vec<String>) {
    let start = Instant::now();
    let mut results = vec![solution.load_and_initial(&workload.initial)];
    let load = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for changeset in &workload.changesets {
        results.push(solution.update_and_reevaluate(changeset));
    }
    let update = start.elapsed().as_secs_f64();
    (load, update, results)
}

fn main() {
    let scale_factor: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let workload = generate_scale_factor(scale_factor);
    println!(
        "scale factor {}: {} nodes, {} edges, {} changesets\n",
        scale_factor,
        workload.initial.node_count(),
        workload.initial.edge_count(),
        workload.changesets.len()
    );

    for query in [Query::Q1, Query::Q2] {
        println!("=== {query} ===");
        println!(
            "{:<28} {:>16} {:>20}",
            "tool", "load+initial [s]", "update+reeval [s]"
        );

        let mut tools: Vec<(String, Box<dyn Solution>)> = vec![
            (
                "GraphBLAS Batch".into(),
                Box::new(GraphBlasBatch::new(query, false)),
            ),
            (
                "GraphBLAS Incremental".into(),
                Box::new(GraphBlasIncremental::new(query, false)),
            ),
            (
                "GraphBLAS Batch (parallel)".into(),
                Box::new(GraphBlasBatch::new(query, true)),
            ),
            (
                "GraphBLAS Incr. (parallel)".into(),
                Box::new(GraphBlasIncremental::new(query, true)),
            ),
            ("NMF Batch".into(), Box::new(NmfBatch::new(query))),
            (
                "NMF Incremental".into(),
                Box::new(NmfIncremental::new(query)),
            ),
        ];

        let mut reference: Option<Vec<String>> = None;
        for (name, solution) in tools.iter_mut() {
            let (load, update, results) = measure(solution.as_mut(), &workload);
            match &reference {
                None => reference = Some(results),
                Some(expected) => assert_eq!(
                    expected, &results,
                    "{name} disagrees with the reference results"
                ),
            }
            println!("{name:<28} {load:>16.4} {update:>20.4}");
        }
        println!(
            "final top-3: {}\n",
            reference.expect("at least one tool ran").last().unwrap()
        );
    }
}
