//! Differential tests of the sharded streaming pipeline (the ISSUE 3 acceptance
//! gate): for shards ∈ {1, 2, 4}, the sharded driver must produce byte-identical
//! Q1/Q2 top-3 outputs to the single-shard driver and to a bulk recomputation,
//! on a retraction-heavy sf1 stream.

use ttc2018_graphblas::datagen::stream::{StreamConfig, UpdateStream};
use ttc2018_graphblas::datagen::{generate_scale_factor, ChangeSet, SocialNetwork};
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::shard::{ShardBackend, ShardedSolution};
use ttc2018_graphblas::ttc_social_media::solution::Solution;
use ttc2018_graphblas::ttc_social_media::stream::StreamDriver;
use ttc2018_graphblas::ttc_social_media::{GraphBlasBatch, GraphBlasIncremental};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn sf1_network() -> SocialNetwork {
    generate_scale_factor(1).initial
}

/// A retraction-heavy micro-batch stream over the sf1 network. `shards` enables
/// the generator's shard-aware emission (the grouping itself must be
/// output-invariant, which `grouped_emission_is_output_invariant` checks).
fn batches(network: &SocialNetwork, seed: u64, shards: usize, count: usize) -> Vec<ChangeSet> {
    UpdateStream::new(
        network,
        StreamConfig {
            seed,
            batch_size: 64,
            deletion_weight: 0.3,
            shards,
            ..StreamConfig::default()
        },
    )
    .take(count)
    .collect()
}

/// Sharded (1/2/4 shards) == unsharded incremental == bulk recomputation after
/// every micro-batch, for both queries and both sharded backends.
#[test]
fn sharded_outputs_are_byte_identical_to_unsharded_and_bulk() {
    let network = sf1_network();
    let batches = batches(&network, 0x5a4d, 4, 12);
    for query in [Query::Q1, Query::Q2] {
        let mut bulk = GraphBlasBatch::new(query, false);
        let mut unsharded = GraphBlasIncremental::new(query, false);
        let mut sharded: Vec<ShardedSolution> = SHARD_COUNTS
            .iter()
            .map(|&n| ShardedSolution::new(query, ShardBackend::Incremental, n))
            .collect();
        if query == Query::Q2 {
            sharded.push(ShardedSolution::new(query, ShardBackend::IncrementalCc, 4));
        }

        let expected = bulk.load_and_initial(&network);
        assert_eq!(unsharded.load_and_initial(&network), expected);
        for s in &mut sharded {
            assert_eq!(s.load_and_initial(&network), expected, "{}", s.name());
        }

        for (batch_no, batch) in batches.iter().enumerate() {
            let expected = bulk.update_and_reevaluate(batch);
            assert_eq!(
                unsharded.update_and_reevaluate(batch),
                expected,
                "unsharded incremental diverged at {query:?} batch {batch_no}"
            );
            for s in &mut sharded {
                assert_eq!(
                    s.update_and_reevaluate(batch),
                    expected,
                    "{} diverged from bulk recompute at {query:?} batch {batch_no}",
                    s.name()
                );
            }
        }
    }
}

/// The full driver pipeline (coalescing included) lands on the same final result
/// for every shard count.
#[test]
fn sharded_driver_final_results_agree_across_shard_counts() {
    let network = sf1_network();
    for query in [Query::Q1, Query::Q2] {
        let mut finals = Vec::new();
        for &n in &SHARD_COUNTS {
            let stream = batches(&network, 0xfade, n, 10).into_iter();
            let mut solution = ShardedSolution::new(query, ShardBackend::Incremental, n);
            let report = StreamDriver::default().run(&mut solution, &network, stream, 10);
            finals.push((n, report.final_result));
        }
        let stream = batches(&network, 0xfade, 0, 10).into_iter();
        let mut reference = GraphBlasIncremental::new(query, false);
        let reference_report = StreamDriver::default().run(&mut reference, &network, stream, 10);
        for (n, final_result) in &finals {
            assert_eq!(
                final_result, &reference_report.final_result,
                "{query:?} with {n} shards diverged from the unsharded driver"
            );
        }
    }
}

/// The generator's shard-aware emission (grouping a batch's operations by owning
/// shard) must not change any query output.
#[test]
fn grouped_emission_is_output_invariant() {
    let network = sf1_network();
    let plain = batches(&network, 0xcafe, 0, 8);
    let grouped = batches(&network, 0xcafe, 4, 8);
    for query in [Query::Q1, Query::Q2] {
        let mut a = GraphBlasIncremental::new(query, false);
        let mut b = GraphBlasIncremental::new(query, false);
        assert_eq!(a.load_and_initial(&network), b.load_and_initial(&network));
        for (raw, shuffled) in plain.iter().zip(&grouped) {
            assert_eq!(
                a.update_and_reevaluate(raw),
                b.update_and_reevaluate(shuffled),
                "shard-aware emission changed the {query:?} result"
            );
        }
    }
}

/// Shard balance sanity: with 4 shards on sf1, every shard owns a non-trivial
/// slice of the graph (the user-id partition is hash-like on the synthetic ids).
#[test]
fn shards_own_balanced_slices() {
    let network = sf1_network();
    let mut sharded = ShardedSolution::new(Query::Q2, ShardBackend::Incremental, 4);
    sharded.load_and_initial(&network);
    let sizes = sharded.shard_sizes();
    assert_eq!(sizes.len(), 4);
    let comments: Vec<usize> = sizes.iter().map(|&(_, c)| c).collect();
    let total: usize = comments.iter().sum();
    assert_eq!(total, network.comments.len());
    for (shard, &c) in comments.iter().enumerate() {
        assert!(
            c * 20 >= total,
            "shard {shard} owns only {c} of {total} comments"
        );
    }
}
