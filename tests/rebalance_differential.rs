//! Differential tests of skew-aware shard rebalancing (the ISSUE 5 acceptance
//! gate): for shards ∈ {2, 4}, rebalanced runs — forced mid-stream tree
//! migrations, automatic skew-monitor migrations, and migrations under the
//! consistent-hash-ring partition policy — must produce **byte-identical
//! per-batch** Q1/Q2 top-3 outputs to the unsharded driver on retraction-heavy
//! sf1 streams, plus a proptest that any sequence of valid migrations is
//! output-invariant.

use proptest::prelude::*;
use ttc2018_graphblas::datagen::partition::{
    AssignmentTable, ModuloPartitioner, Partitioner, RingPartitioner,
};
use ttc2018_graphblas::datagen::stream::{StreamConfig, UpdateStream};
use ttc2018_graphblas::datagen::{generate_scale_factor, ChangeSet, ElementId, SocialNetwork};
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::shard::{
    GraphBlasShardFactory, MigrateError, RebalanceConfig, ShardBackend, ShardedSolution,
};
use ttc2018_graphblas::ttc_social_media::solution::Solution;
use ttc2018_graphblas::ttc_social_media::GraphBlasIncremental;

const SHARD_COUNTS: [usize; 2] = [2, 4];

fn sf1_network() -> SocialNetwork {
    generate_scale_factor(1).initial
}

/// A retraction-heavy micro-batch stream over the sf1 network (30% deletions),
/// the regime where a stale candidate surviving a migration would surface as a
/// wrong rebuild.
fn batches(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
    UpdateStream::new(
        network,
        StreamConfig {
            seed,
            batch_size: 64,
            deletion_weight: 0.3,
            ..StreamConfig::default()
        },
    )
    .take(count)
    .collect()
}

/// A rebalancing-enabled sharded solution over an [`AssignmentTable`]-wrapped
/// base policy, with the automatic monitor off (tests force migrations
/// explicitly unless stated otherwise).
fn rebalanceable(query: Query, base: Box<dyn Partitioner>) -> ShardedSolution {
    ShardedSolution::with_factory_and_partitioner(
        Box::new(GraphBlasShardFactory::new(query, ShardBackend::Incremental)),
        Box::new(AssignmentTable::new(base)),
    )
    .with_rebalancing(RebalanceConfig {
        check_every: 0,
        ..RebalanceConfig::default()
    })
}

/// The acceptance gate: forced mid-stream migrations leave every per-batch
/// output byte-identical to the unsharded incremental driver, for shards ∈
/// {2, 4} and both queries, on a retraction-heavy sf1 stream.
#[test]
fn forced_mid_stream_migrations_are_byte_invariant() {
    let network = sf1_network();
    let batches = batches(&network, 0x5eba, 12);
    // migrate the three largest initial trees, round-robin over recipients,
    // at different points of the stream
    let mut tree_sizes: Vec<(usize, ElementId)> = network
        .posts
        .iter()
        .map(|p| {
            let comments = network
                .comments
                .iter()
                .filter(|c| c.root_post == p.id)
                .count();
            (comments, p.id)
        })
        .collect();
    tree_sizes.sort_unstable_by(|a, b| b.cmp(a));
    let hot_roots: Vec<ElementId> = tree_sizes.iter().take(3).map(|&(_, id)| id).collect();

    for query in [Query::Q1, Query::Q2] {
        for &shards in &SHARD_COUNTS {
            let mut reference = GraphBlasIncremental::new(query, false);
            let mut rebalanced = rebalanceable(query, Box::new(ModuloPartitioner::new(shards)));
            assert_eq!(
                rebalanced.load_and_initial(&network),
                reference.load_and_initial(&network),
                "{query:?}/{shards} shards diverged at load"
            );
            for (batch_no, batch) in batches.iter().enumerate() {
                assert_eq!(
                    rebalanced.update_and_reevaluate(batch),
                    reference.update_and_reevaluate(batch),
                    "{query:?}/{shards} shards diverged at batch {batch_no}"
                );
                // force a migration after batches 2, 5, 8 — mid-stream, with
                // retractions still arriving for the migrated trees
                if batch_no % 3 == 2 {
                    let root = hot_roots[(batch_no / 3) % hot_roots.len()];
                    let target = (batch_no / 3 + 1) % shards;
                    match rebalanced.migrate_tree(root, target) {
                        Ok(()) | Err(MigrateError::AlreadyOwned(_)) => {}
                        Err(err) => panic!("migration of {root} to {target} failed: {err}"),
                    }
                }
            }
            assert!(
                rebalanced.rebalance_stats().migrations > 0,
                "{query:?}/{shards}: the test never actually migrated"
            );
        }
    }
}

/// Migrations compose with the consistent-hash-ring base policy the same way
/// they do with modulo: still byte-identical to the unsharded driver.
#[test]
fn migrations_over_the_ring_partitioner_are_byte_invariant() {
    let network = sf1_network();
    let batches = batches(&network, 0x417b, 10);
    let mut reference = GraphBlasIncremental::new(Query::Q2, false);
    let mut rebalanced = rebalanceable(Query::Q2, Box::new(RingPartitioner::new(4, 42)));
    assert_eq!(
        rebalanced.load_and_initial(&network),
        reference.load_and_initial(&network)
    );
    let roots: Vec<ElementId> = network.posts.iter().map(|p| p.id).collect();
    for (batch_no, batch) in batches.iter().enumerate() {
        assert_eq!(
            rebalanced.update_and_reevaluate(batch),
            reference.update_and_reevaluate(batch),
            "ring-partitioned rebalanced run diverged at batch {batch_no}"
        );
        // bounce a different tree to a different shard after every batch
        let root = roots[batch_no % roots.len()];
        let target = batch_no % 4;
        match rebalanced.migrate_tree(root, target) {
            Ok(()) | Err(MigrateError::AlreadyOwned(_)) => {}
            Err(err) => panic!("migration failed: {err}"),
        }
    }
}

/// The automatic skew monitor on a hot-tree sf1 stream: outputs stay
/// byte-identical while the monitor migrates, and the final max/mean skew of
/// the `shard_sizes` signal is measurably below the static-partition run's.
#[test]
fn skew_monitor_reduces_hot_tree_skew_without_changing_output() {
    let network = sf1_network();
    let batches: Vec<ChangeSet> = UpdateStream::new(
        &network,
        StreamConfig {
            seed: 0x807_1e35,
            batch_size: 64,
            deletion_weight: 0.1,
            hot_tree_bias: 0.8,
            ..StreamConfig::default()
        },
    )
    .take(20)
    .collect();

    let mut reference = GraphBlasIncremental::new(Query::Q1, false);
    let mut monitored = ShardedSolution::with_factory_and_partitioner(
        Box::new(GraphBlasShardFactory::new(
            Query::Q1,
            ShardBackend::Incremental,
        )),
        Box::new(AssignmentTable::new(Box::new(ModuloPartitioner::new(2)))),
    )
    .with_rebalancing(RebalanceConfig {
        check_every: 4,
        skew_threshold: 1.2,
        max_migrations_per_check: 2,
    });
    let mut static_partition = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 2);

    assert_eq!(
        monitored.load_and_initial(&network),
        reference.load_and_initial(&network)
    );
    static_partition.load_and_initial(&network);
    for (batch_no, batch) in batches.iter().enumerate() {
        let expected = reference.update_and_reevaluate(batch);
        assert_eq!(
            monitored.update_and_reevaluate(batch),
            expected,
            "monitored run diverged at batch {batch_no}"
        );
        static_partition.update_and_reevaluate(batch);
    }

    let stats = monitored.rebalance_stats();
    assert!(stats.checks > 0 && stats.migrations > 0, "{stats:?}");
    let skew = |solution: &ShardedSolution| {
        let loads: Vec<usize> = solution.shard_sizes().iter().map(|&(p, c)| p + c).collect();
        let max = *loads.iter().max().expect("non-empty") as f64;
        let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
        max / mean
    };
    let monitored_skew = skew(&monitored);
    let static_skew = skew(&static_partition);
    assert!(
        monitored_skew < static_skew,
        "monitor must reduce max/mean skew: {monitored_skew:.3} (rebalanced) vs \
         {static_skew:.3} (static)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sequence of valid migrations — arbitrary trees to arbitrary shards
    /// at arbitrary points of the stream — preserves byte-identical per-batch
    /// output vs. the unsharded driver. The migration machinery (extraction,
    /// replica backfill, donor rebuild, assignment-table override) must be
    /// completely invisible to the merged result.
    #[test]
    fn migration_sequences_are_output_invariant(
        seed in 0u64..1000,
        shards in 2usize..5,
        schedule in prop::collection::vec((0usize..64, 0usize..8, 0usize..5), 0..12),
    ) {
        let network = ttc2018_graphblas::datagen::generate_workload(
            &ttc2018_graphblas::datagen::GeneratorConfig::tiny(seed),
        )
        .initial;
        let batches: Vec<ChangeSet> = UpdateStream::new(
            &network,
            StreamConfig {
                seed: seed ^ 0xabcd,
                batch_size: 16,
                deletion_weight: 0.3,
                ..StreamConfig::default()
            },
        )
        .take(8)
        .collect();
        let roots: Vec<ElementId> = network.posts.iter().map(|p| p.id).collect();
        prop_assert!(!roots.is_empty(), "tiny networks always generate posts");

        for query in [Query::Q1, Query::Q2] {
            let mut reference = GraphBlasIncremental::new(query, false);
            let mut rebalanced =
                rebalanceable(query, Box::new(ModuloPartitioner::new(shards)));
            prop_assert_eq!(
                rebalanced.load_and_initial(&network),
                reference.load_and_initial(&network)
            );
            for (batch_no, batch) in batches.iter().enumerate() {
                prop_assert_eq!(
                    rebalanced.update_and_reevaluate(batch),
                    reference.update_and_reevaluate(batch),
                    "{:?} diverged at batch {} (shards {}, seed {})",
                    query, batch_no, shards, seed
                );
                for &(root_idx, target, at_batch) in &schedule {
                    if at_batch % batches.len() == batch_no {
                        let root = roots[root_idx % roots.len()];
                        match rebalanced.migrate_tree(root, target % shards) {
                            Ok(()) | Err(MigrateError::AlreadyOwned(_)) => {}
                            Err(err) => prop_assert!(false, "migration failed: {}", err),
                        }
                    }
                }
            }
        }
    }
}
