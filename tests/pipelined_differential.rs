//! Differential tests of the staged asynchronous ingestion pipeline (the ISSUE 4
//! acceptance gate): for shards ∈ {1, 2, 4}, the pipelined engine must produce
//! **byte-identical per-batch** Q1/Q2 top-3 outputs to the synchronous barrier
//! driver on retraction-heavy sf1 streams — including under injected per-stage
//! delays that force shards to complete batches out of order — plus a proptest
//! that adversarially permutes shard completion order on operation soups mixing
//! adds and retracts of the same edge within one batch.

use proptest::prelude::*;
use ttc2018_graphblas::datagen::stream::{StreamConfig, UpdateStream};
use ttc2018_graphblas::datagen::{
    generate_scale_factor, ChangeOperation, ChangeSet, Comment, SocialNetwork,
};
use ttc2018_graphblas::nmf_baseline::NmfShardFactory;
use ttc2018_graphblas::ttc_social_media::graph::paper_example_network;
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::pipeline::{
    DelayInjection, IngestEngine, PipelineConfig, PipelinedEngine, SyncEngine,
};
use ttc2018_graphblas::ttc_social_media::shard::{ShardBackend, ShardFactory, ShardedSolution};
use ttc2018_graphblas::ttc_social_media::stream::StreamDriver;
use ttc2018_graphblas::ttc_social_media::GraphBlasIncremental;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn sf1_network() -> SocialNetwork {
    generate_scale_factor(1).initial
}

/// A retraction-heavy micro-batch stream over the sf1 network (30% deletions),
/// the regime where the watermark merge must pick the rebuild path.
fn batches(network: &SocialNetwork, seed: u64, shards: usize, count: usize) -> Vec<ChangeSet> {
    UpdateStream::new(
        network,
        StreamConfig {
            seed,
            batch_size: 64,
            deletion_weight: 0.3,
            shards,
            ..StreamConfig::default()
        },
    )
    .take(count)
    .collect()
}

/// Per-batch results of the synchronous barrier driver over a sharded solution.
fn run_sync(
    solution: ShardedSolution,
    network: &SocialNetwork,
    batches: &[ChangeSet],
) -> Vec<String> {
    let mut engine = SyncEngine::new(StreamDriver::default(), Box::new(solution));
    let mut stream = batches.iter().cloned();
    engine
        .run(network, &mut stream, batches.len())
        .expect("sync engine never truncates")
        .results
}

/// Per-batch results of the pipelined engine.
fn run_pipelined(
    factory: Box<dyn ShardFactory>,
    shards: usize,
    network: &SocialNetwork,
    batches: &[ChangeSet],
    delays: Option<DelayInjection>,
) -> Vec<String> {
    let mut engine = PipelinedEngine::new(
        factory,
        shards,
        PipelineConfig {
            delays,
            ..PipelineConfig::default()
        },
    );
    let mut stream = batches.iter().cloned();
    engine
        .run(network, &mut stream, batches.len())
        .expect("pipeline completed")
        .results
}

fn graphblas_factory(query: Query, backend: ShardBackend) -> Box<dyn ShardFactory> {
    Box::new(ttc2018_graphblas::ttc_social_media::GraphBlasShardFactory::new(query, backend))
}

/// The acceptance gate: pipelined == synchronous barrier driver, per batch and
/// byte for byte, for shards ∈ {1, 2, 4} on a retraction-heavy sf1 stream —
/// anchored against the plain unsharded incremental driver as well.
#[test]
fn pipelined_outputs_are_byte_identical_to_the_barrier_driver() {
    let network = sf1_network();
    let batches = batches(&network, 0x9e4d, 4, 12);
    for query in [Query::Q1, Query::Q2] {
        let mut unsharded = SyncEngine::new(
            StreamDriver::default(),
            Box::new(GraphBlasIncremental::new(query, false)),
        );
        let mut stream = batches.iter().cloned();
        let anchor = unsharded
            .run(&network, &mut stream, batches.len())
            .expect("sync engine never truncates")
            .results;
        for &shards in &SHARD_COUNTS {
            let sync = run_sync(
                ShardedSolution::new(query, ShardBackend::Incremental, shards),
                &network,
                &batches,
            );
            assert_eq!(
                sync, anchor,
                "sync barrier driver diverged from unsharded at {query:?}/{shards} shards"
            );
            let pipelined = run_pipelined(
                graphblas_factory(query, ShardBackend::Incremental),
                shards,
                &network,
                &batches,
                None,
            );
            assert_eq!(
                pipelined, sync,
                "pipelined diverged from barrier driver at {query:?}/{shards} shards"
            );
        }
    }
}

/// Same gate under injected per-stage delays: routing stalls and per-shard
/// apply stalls force out-of-order shard completion, which the watermark merge
/// must absorb without changing a single byte.
#[test]
fn pipelined_outputs_survive_injected_stage_delays() {
    let network = sf1_network();
    let batches = batches(&network, 0xde1a7, 4, 10);
    for query in [Query::Q1, Query::Q2] {
        let sync = run_sync(
            ShardedSolution::new(query, ShardBackend::Incremental, 4),
            &network,
            &batches,
        );
        for delay_seed in [1u64, 2, 3] {
            let pipelined = run_pipelined(
                graphblas_factory(query, ShardBackend::Incremental),
                4,
                &network,
                &batches,
                Some(DelayInjection {
                    seed: delay_seed,
                    max_route_micros: 300,
                    max_apply_micros: 1500,
                }),
            );
            assert_eq!(
                pipelined, sync,
                "delay seed {delay_seed} changed {query:?} output"
            );
        }
    }
}

/// The other shard backends ride the same stage graph: incremental-CC (Q2) and
/// the NMF dependency-record baseline must be pipeline-invariant too.
#[test]
fn alternative_backends_are_pipeline_invariant() {
    let network = sf1_network();
    let batches = batches(&network, 0xbac4e, 2, 8);
    let delays = Some(DelayInjection {
        seed: 9,
        max_route_micros: 200,
        max_apply_micros: 800,
    });
    let sync_cc = run_sync(
        ShardedSolution::new(Query::Q2, ShardBackend::IncrementalCc, 2),
        &network,
        &batches,
    );
    let pipelined_cc = run_pipelined(
        graphblas_factory(Query::Q2, ShardBackend::IncrementalCc),
        2,
        &network,
        &batches,
        delays.clone(),
    );
    assert_eq!(
        pipelined_cc, sync_cc,
        "incremental-CC diverged under the pipeline"
    );

    for query in [Query::Q1, Query::Q2] {
        let sync_nmf = run_sync(
            ShardedSolution::with_factory(Box::new(NmfShardFactory::new(query)), 2),
            &network,
            &batches,
        );
        let pipelined_nmf = run_pipelined(
            Box::new(NmfShardFactory::new(query)),
            2,
            &network,
            &batches,
            delays.clone(),
        );
        assert_eq!(
            pipelined_nmf, sync_nmf,
            "NMF sharded baseline diverged under the pipeline at {query:?}"
        );
        // and both agree with the GraphBLAS pipeline on the same stream
        let pipelined_gb = run_pipelined(
            graphblas_factory(query, ShardBackend::Incremental),
            2,
            &network,
            &batches,
            None,
        );
        assert_eq!(pipelined_nmf, pipelined_gb, "NMF vs GraphBLAS at {query:?}");
    }
}

// ---------------------------------------------------------------------------
// Watermark-merge ordering proptest
// ---------------------------------------------------------------------------

const USERS: [u64; 4] = [101, 102, 103, 104];
const COMMENTS: [u64; 3] = [11, 12, 13];
const POSTS: [u64; 2] = [1, 2];

/// Compact encoding of one operation, decoded in [`materialize`] — the same
/// scheme as `coalesce_proptest`, biased so add/retract pairs of the *same*
/// edge land in one batch (the small id pools make collisions the common case).
fn op_strategy() -> impl Strategy<Value = (u8, usize, usize)> {
    (0u8..6, 0usize..4, 0usize..4)
}

fn batch_strategy() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    prop::collection::vec(op_strategy(), 1..30)
}

/// Decode an encoded batch against the paper-example network, threading fresh
/// comment ids across the batches of one test case.
fn materialize(encoded: &[(u8, usize, usize)], next_id: &mut u64) -> ChangeSet {
    let mut new_comments: Vec<u64> = Vec::new();
    let mut root_of: std::collections::HashMap<u64, u64> =
        [(11, 1), (12, 1), (13, 2)].into_iter().collect();
    let operations = encoded
        .iter()
        .map(|&(kind, a, b)| {
            let comment_pool = |idx: usize| {
                let pool_len = COMMENTS.len() + new_comments.len();
                let slot = idx % pool_len;
                if slot < COMMENTS.len() {
                    COMMENTS[slot]
                } else {
                    new_comments[slot - COMMENTS.len()]
                }
            };
            match kind {
                0 => ChangeOperation::AddLike {
                    user: USERS[a],
                    comment: comment_pool(b),
                },
                1 => ChangeOperation::RemoveLike {
                    user: USERS[a],
                    comment: comment_pool(b),
                },
                2 => ChangeOperation::AddFriendship {
                    a: USERS[a],
                    b: USERS[b],
                },
                3 => ChangeOperation::RemoveFriendship {
                    a: USERS[a],
                    b: USERS[b],
                },
                4 => {
                    let id = *next_id;
                    *next_id += 1;
                    new_comments.push(id);
                    let post = POSTS[a % POSTS.len()];
                    root_of.insert(id, post);
                    ChangeOperation::AddComment {
                        comment: Comment {
                            id,
                            timestamp: 100 + id,
                            author: USERS[b],
                            parent: post,
                            root_post: post,
                        },
                    }
                }
                _ => {
                    let id = *next_id;
                    *next_id += 1;
                    let parent = comment_pool(a);
                    let root_post = root_of[&parent];
                    new_comments.push(id);
                    root_of.insert(id, root_post);
                    ChangeOperation::AddComment {
                        comment: Comment {
                            id,
                            timestamp: 100 + id,
                            author: USERS[b],
                            parent,
                            root_post,
                        },
                    }
                }
            }
        })
        .collect();
    ChangeSet { operations }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Watermark-merge ordering: whatever order the shards *complete* batches in
    /// (adversarially permuted via seeded per-stage delays), the pipelined
    /// per-batch output equals the synchronous barrier driver's — on operation
    /// soups that mix adds and retracts of the same edge inside one batch, the
    /// case where merging batch `t`'s candidates with batch `t+1` state would
    /// silently resurrect retracted scores.
    #[test]
    fn watermark_merge_is_completion_order_invariant(
        encoded in prop::collection::vec(batch_strategy(), 1..5),
        delay_seed in 0u64..1000,
        shards in 2usize..5,
    ) {
        let network = paper_example_network();
        let mut next_id = 700;
        let batches: Vec<ChangeSet> = encoded
            .iter()
            .map(|batch| materialize(batch, &mut next_id))
            .collect();
        for query in [Query::Q1, Query::Q2] {
            let sync = run_sync(
                ShardedSolution::new(query, ShardBackend::Incremental, shards),
                &network,
                &batches,
            );
            let pipelined = run_pipelined(
                graphblas_factory(query, ShardBackend::Incremental),
                shards,
                &network,
                &batches,
                Some(DelayInjection {
                    seed: delay_seed,
                    max_route_micros: 100,
                    max_apply_micros: 400,
                }),
            );
            prop_assert_eq!(
                &pipelined, &sync,
                "{:?} with {} shards, delay seed {}", query, shards, delay_seed
            );

            // anchor: the unsharded incremental driver sees the same bytes
            let mut unsharded = SyncEngine::new(
                StreamDriver::default(),
                Box::new(GraphBlasIncremental::new(query, false)),
            );
            let mut stream = batches.iter().cloned();
            let anchor = unsharded
                .run(&network, &mut stream, batches.len())
                .expect("sync engine never truncates")
                .results;
            prop_assert_eq!(&sync, &anchor, "sync sharded vs unsharded at {:?}", query);
        }
    }
}
