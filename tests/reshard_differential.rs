//! Differential tests of elastic resharding (the ISSUE 10 acceptance gate):
//! a pipelined run whose shard count changes mid-stream — grown 2 → 4, shrunk
//! 4 → 2, or rescheduled twice as 2 → 4 → 3 — must produce **byte-identical
//! per-batch** top-3 outputs to the *unsharded* synchronous driver on
//! retraction-heavy sf1 streams, for the incremental-CC and NMF shard backends
//! as well as the plain incremental one; plus a proptest over
//! proptest-chosen `(at_seq, new_count)` schedules and a chaos test killing a
//! worker at the exact sequence number a reshard barrier drains to.

use proptest::prelude::*;
use ttc2018_graphblas::datagen::stream::{StreamConfig, UpdateStream};
use ttc2018_graphblas::datagen::{generate_scale_factor, ChangeSet, SocialNetwork};
use ttc2018_graphblas::nmf_baseline::{NmfIncremental, NmfShardFactory};
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::pipeline::{
    IngestEngine, PipelineConfig, PipelineStats, PipelinedEngine, SyncEngine,
};
use ttc2018_graphblas::ttc_social_media::recovery::RecoveryConfig;
use ttc2018_graphblas::ttc_social_media::shard::{
    GraphBlasShardFactory, ShardBackend, ShardFactory,
};
use ttc2018_graphblas::ttc_social_media::solution::Solution;
use ttc2018_graphblas::ttc_social_media::stream::StreamDriver;
use ttc2018_graphblas::ttc_social_media::{GraphBlasIncremental, GraphBlasIncrementalCc};

const BATCHES: usize = 12;

fn sf1_network() -> SocialNetwork {
    generate_scale_factor(1).initial
}

/// A retraction-heavy micro-batch stream over the sf1 network (30% deletions),
/// the regime where a reshard rebuilding shard state from checkpoints would
/// surface a lost retraction as a wrong rebuild decision downstream.
fn batches(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
    UpdateStream::new(
        network,
        StreamConfig {
            seed,
            batch_size: 64,
            deletion_weight: 0.3,
            ..StreamConfig::default()
        },
    )
    .take(count)
    .collect()
}

/// The shard backends the gate covers, with their unsharded counterpart used
/// as the reference driver.
fn backend_pair(backend: &str, query: Query) -> (Box<dyn ShardFactory>, Box<dyn Solution>) {
    match backend {
        "incremental" => (
            Box::new(GraphBlasShardFactory::new(query, ShardBackend::Incremental)),
            Box::new(GraphBlasIncremental::new(query, false)),
        ),
        "incremental-cc" => (
            Box::new(GraphBlasShardFactory::new(
                query,
                ShardBackend::IncrementalCc,
            )),
            Box::new(GraphBlasIncrementalCc::new()),
        ),
        "nmf" => (
            Box::new(NmfShardFactory::new(query)),
            Box::new(NmfIncremental::new(query)),
        ),
        other => panic!("unknown backend {other}"),
    }
}

/// Per-batch results of the unsharded synchronous driver — the reference every
/// resharded run must match byte for byte.
fn run_unsharded(
    solution: Box<dyn Solution>,
    network: &SocialNetwork,
    b: &[ChangeSet],
) -> Vec<String> {
    let mut engine = SyncEngine::new(StreamDriver::default(), solution);
    let mut stream = b.iter().cloned();
    engine
        .run(network, &mut stream, b.len())
        .expect("sync engine never truncates")
        .results
}

/// Per-batch results + pipeline stats of a pipelined run with the given
/// reshard schedule (and optionally a kill schedule riding along).
fn run_resharded(
    factory: Box<dyn ShardFactory>,
    shards: usize,
    network: &SocialNetwork,
    b: &[ChangeSet],
    reshards: Vec<(u64, usize)>,
    kills: Vec<(usize, u64)>,
) -> (Vec<String>, PipelineStats) {
    let recovery = (!kills.is_empty()).then_some(RecoveryConfig {
        checkpoint_every: 3,
    });
    let mut engine = PipelinedEngine::new(
        factory,
        shards,
        PipelineConfig {
            reshards,
            kill_shards: kills,
            recovery,
            ..PipelineConfig::default()
        },
    );
    let mut stream = b.iter().cloned();
    let report = engine
        .run(network, &mut stream, b.len())
        .expect("resharding runs complete");
    let stats = report.pipeline.expect("pipelined engines report stats");
    (report.results, stats)
}

/// The acceptance gate: the three headline schedules — grow 2 → 4, shrink
/// 4 → 2, and the double barrier 2 → 4 → 3 — for the incremental-CC and NMF
/// backends (and the plain incremental one), each byte-identical to the
/// unsharded synchronous driver on the same stream.
#[test]
fn reshard_schedules_are_byte_identical_to_the_unsharded_driver() {
    let network = sf1_network();
    let batches = batches(&network, 0x4e5a, BATCHES);
    let schedules: [(usize, Vec<(u64, usize)>); 3] = [
        (2, vec![(6, 4)]),
        (4, vec![(6, 2)]),
        (2, vec![(4, 4), (8, 3)]),
    ];
    for (backend, query) in [
        ("incremental", Query::Q1),
        ("incremental-cc", Query::Q2),
        ("nmf", Query::Q1),
    ] {
        let (_, reference) = backend_pair(backend, query);
        let expected = run_unsharded(reference, &network, &batches);
        for (initial, schedule) in &schedules {
            let (factory, _) = backend_pair(backend, query);
            let (results, stats) = run_resharded(
                factory,
                *initial,
                &network,
                &batches,
                schedule.clone(),
                vec![],
            );
            assert_eq!(
                results, expected,
                "{backend}/{query:?}: reshard {initial} shards via {schedule:?} changed output"
            );
            assert_eq!(stats.reshards.len(), schedule.len(), "every barrier fired");
            let last = stats.reshards.last().expect("non-empty schedule");
            assert_eq!(stats.shards, last.to_shards, "end-of-run topology");
            assert_eq!(stats.shard_sizes.len(), last.to_shards);
        }
    }
}

/// Kill-during-reshard chaos: a worker killed at the exact sequence number the
/// barrier drains to (the drain absorbs the crash and the supervisor replays
/// that shard to the barrier), plus one killed after the topology change on a
/// shard id that only exists post-reshard. Byte-identical both times, and
/// every crash restored exactly once.
#[test]
fn kills_during_and_after_a_reshard_recover_byte_identically() {
    let network = sf1_network();
    let batches = batches(&network, 0x6b11, BATCHES);
    let (_, reference) = backend_pair("incremental-cc", Query::Q2);
    let expected = run_unsharded(reference, &network, &batches);
    for kills in [vec![(1usize, 6u64)], vec![(3usize, 8u64)]] {
        let (factory, _) = backend_pair("incremental-cc", Query::Q2);
        let (results, stats) =
            run_resharded(factory, 2, &network, &batches, vec![(6, 4)], kills.clone());
        assert_eq!(results, expected, "kills {kills:?} changed output");
        let recovery = stats.recovery.expect("recovery was enabled");
        assert_eq!(
            recovery.restores, recovery.crashes,
            "kills {kills:?}: {recovery:?}"
        );
        assert_eq!(recovery.crashes, 1, "kills {kills:?}: {recovery:?}");
        assert_eq!(stats.reshards.len(), 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Reshard-at-any-seq: an arbitrary schedule of `(at_seq, new_count)`
    /// barriers — including duplicate sequence numbers (both fire
    /// back-to-back) and barriers past the stream end (never fire) — leaves
    /// every per-batch output byte-identical to the unsharded driver.
    #[test]
    fn reshard_schedules_are_output_invariant(
        seed in 0u64..1000,
        initial in 1usize..5,
        schedule in prop::collection::vec((0u64..10, 1usize..5), 1..4),
    ) {
        let network = ttc2018_graphblas::datagen::generate_workload(
            &ttc2018_graphblas::datagen::GeneratorConfig::tiny(seed),
        )
        .initial;
        let b: Vec<ChangeSet> = UpdateStream::new(
            &network,
            StreamConfig {
                seed: seed ^ 0x4e5a,
                batch_size: 16,
                deletion_weight: 0.3,
                ..StreamConfig::default()
            },
        )
        .take(8)
        .collect();

        for query in [Query::Q1, Query::Q2] {
            let (_, reference) = backend_pair("incremental", query);
            let expected = run_unsharded(reference, &network, &b);
            let (factory, _) = backend_pair("incremental", query);
            let (results, stats) = run_resharded(
                factory,
                initial,
                &network,
                &b,
                schedule.clone(),
                vec![],
            );
            prop_assert_eq!(
                &results,
                &expected,
                "{:?} diverged (initial {}, seed {}, schedule {:?})",
                query, initial, seed, schedule
            );
            let fired = schedule.iter().filter(|&&(at, _)| at < b.len() as u64).count();
            prop_assert_eq!(
                stats.reshards.len(), fired,
                "barriers inside the stream fire exactly once: {:?}", stats.reshards
            );
        }
    }
}
