//! Table I of the paper lists the GraphBLAS operations the solution relies on. This
//! repository-level test exercises every one of them through the public API of the
//! `graphblas` crate, so the coverage claim in DESIGN.md is checked by CI rather than
//! asserted in prose.

use ttc2018_graphblas::graphblas::ops;
use ttc2018_graphblas::graphblas::ops_traits::{First, Plus, TimesConstant, ValueEq};
use ttc2018_graphblas::graphblas::semiring::stock as semirings;
use ttc2018_graphblas::graphblas::{monoid, IndexSelection, Matrix, Vector, VectorMask};

#[test]
fn grb_mxm_matrix_matrix_multiplication() {
    let a: Matrix<u64> = Matrix::from_edges(2, 3, &[(0, 0), (1, 2)]).unwrap();
    let b: Matrix<u64> = Matrix::from_edges(3, 2, &[(0, 1), (2, 0)]).unwrap();
    let c = ops::mxm(&a, &b, semirings::plus_times::<u64>()).unwrap();
    assert_eq!(c.get(0, 1), Some(1));
    assert_eq!(c.get(1, 0), Some(1));
    // masked and parallel forms
    let mask_matrix: Matrix<bool> = Matrix::from_edges(2, 2, &[(0, 1)]).unwrap();
    let masked = ops::mxm_masked(
        &ttc2018_graphblas::graphblas::MatrixMask::structural(&mask_matrix),
        &a,
        &b,
        semirings::plus_times::<u64>(),
    )
    .unwrap();
    assert_eq!(masked.nvals(), 1);
    assert_eq!(
        ops::mxm_par(&a, &b, semirings::plus_times::<u64>()).unwrap(),
        c
    );
}

#[test]
fn grb_vxm_and_mxv_vector_matrix_products() {
    let a: Matrix<u64> = Matrix::from_edges(3, 3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
    let u = Vector::from_tuples(3, &[(0, 1u64)], First::new()).unwrap();
    let via_vxm = ops::vxm(&u, &a, semirings::plus_times::<u64>()).unwrap();
    let via_mxv = ops::mxv(&a.transpose(), &u, semirings::plus_times::<u64>()).unwrap();
    assert_eq!(via_vxm, via_mxv);
    assert_eq!(via_vxm.get(1), Some(1));
}

#[test]
fn grb_ewise_add_and_mult() {
    let u = Vector::from_tuples(4, &[(0, 1u64), (2, 2)], First::new()).unwrap();
    let v = Vector::from_tuples(4, &[(2, 3u64), (3, 4)], First::new()).unwrap();
    let union = ops::ewise_add_vector(&u, &v, Plus::new()).unwrap();
    assert_eq!(union.extract_tuples(), vec![(0, 1), (2, 5), (3, 4)]);
    let intersection = ops::ewise_mult_vector(
        &u,
        &v,
        ttc2018_graphblas::graphblas::ops_traits::Times::new(),
    )
    .unwrap();
    assert_eq!(intersection.extract_tuples(), vec![(2, 6)]);
}

#[test]
fn grb_extract_submatrix_and_subvector() {
    let a: Matrix<u64> = Matrix::from_edges(4, 4, &[(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
    let sel = [2usize, 3];
    let sub = ops::extract_submatrix(&a, &IndexSelection::List(&sel), &IndexSelection::List(&sel))
        .unwrap();
    assert_eq!(sub.get(0, 1), Some(1));
    assert_eq!(sub.get(1, 0), Some(1));
    let u = Vector::from_tuples(4, &[(3, 9u64)], First::new()).unwrap();
    let subv = ops::extract_subvector(&u, &IndexSelection::List(&sel)).unwrap();
    assert_eq!(subv.get(1), Some(9));
}

#[test]
fn grb_apply_unary_operator() {
    let u = Vector::from_tuples(3, &[(1, 2u64)], First::new()).unwrap();
    let scaled = ops::apply_vector(&u, TimesConstant::new(10u64));
    assert_eq!(scaled.get(1), Some(20));
}

#[test]
fn gxb_select_by_value() {
    let a = Matrix::from_tuples(2, 2, &[(0, 0, 1u64), (0, 1, 2), (1, 1, 2)], Plus::new()).unwrap();
    let selected = ops::select_matrix(&a, ValueEq::new(2u64));
    assert_eq!(selected.nvals(), 2);
}

#[test]
fn grb_reduce_to_vector_and_scalar() {
    let a = Matrix::from_tuples(2, 3, &[(0, 0, 1u64), (0, 2, 2), (1, 1, 3)], Plus::new()).unwrap();
    let rows = ops::reduce_matrix_rows(&a, monoid::stock::plus::<u64>());
    assert_eq!(rows.get(0), Some(3));
    assert_eq!(rows.get(1), Some(3));
    let total = ops::reduce_matrix_scalar(&a, monoid::stock::plus::<u64>());
    assert_eq!(total, 6);
    let vector_total = ops::reduce_vector_scalar(&rows, monoid::stock::plus::<u64>());
    assert_eq!(vector_total, 6);
}

#[test]
fn grb_transpose() {
    let a: Matrix<u64> = Matrix::from_edges(2, 3, &[(0, 2)]).unwrap();
    let t = a.transpose();
    assert_eq!(t.nrows(), 3);
    assert_eq!(t.get(2, 0), Some(1));
}

#[test]
fn grb_build_and_extract_tuples() {
    let tuples = vec![(0usize, 1usize, 5u64), (1, 0, 7)];
    let a = Matrix::from_tuples(2, 2, &tuples, Plus::new()).unwrap();
    assert_eq!(a.extract_tuples(), tuples);
    let v = Vector::from_tuples(3, &[(2, 4u64)], Plus::new()).unwrap();
    assert_eq!(v.extract_tuples(), vec![(2, 4)]);
}

#[test]
fn masked_assignment_used_by_q1_incremental() {
    let mask_vec = Vector::from_tuples(3, &[(1, 1u64)], First::new()).unwrap();
    let source = Vector::from_tuples(3, &[(0, 10u64), (1, 20)], First::new()).unwrap();
    let mut target = Vector::new(3);
    ops::assign_vector_masked(&mut target, &VectorMask::structural(&mask_vec), &source).unwrap();
    assert_eq!(target.extract_tuples(), vec![(1, 20)]);
}
