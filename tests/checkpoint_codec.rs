//! Checkpoint-codec round trips over every shard backend (ISSUE 6 satellite):
//! snapshot → restore (rebuild the evaluator from the decoded sub-network) →
//! snapshot must reproduce **identical bytes** for all four evaluator backends
//! — GraphBLAS incremental (Q1 and Q2), GraphBLAS incremental-CC, and the NMF
//! dependency-record baseline — because byte-stable snapshots are what lets
//! the recovery differential gate demand byte-identical replays. Truncated or
//! corrupted snapshots must fail with a *named* [`CheckpointError`], never a
//! panic. (The single-backend unit tests live in `ttc_social_media::recovery`;
//! this repo-level test exists because the NMF factory lives in a crate that
//! depends on `ttc-social-media`.)

use ttc2018_graphblas::datagen::stream::{StreamConfig, UpdateStream};
use ttc2018_graphblas::datagen::{generate_workload, GeneratorConfig};
use ttc2018_graphblas::nmf_baseline::NmfShardFactory;
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::recovery::{CheckpointError, ShardCheckpoint};
use ttc2018_graphblas::ttc_social_media::shard::{
    GraphBlasShardFactory, ShardBackend, ShardFactory, ShardRouter,
};

/// The four backends under test, with the query each answers.
fn backends() -> Vec<(&'static str, Box<dyn ShardFactory>)> {
    vec![
        (
            "graphblas-incremental-q1",
            Box::new(GraphBlasShardFactory::new(
                Query::Q1,
                ShardBackend::Incremental,
            )) as Box<dyn ShardFactory>,
        ),
        (
            "graphblas-incremental-q2",
            Box::new(GraphBlasShardFactory::new(
                Query::Q2,
                ShardBackend::Incremental,
            )),
        ),
        (
            "graphblas-incremental-cc",
            Box::new(GraphBlasShardFactory::new(
                Query::Q2,
                ShardBackend::IncrementalCc,
            )),
        ),
        ("nmf-q1", Box::new(NmfShardFactory::new(Query::Q1))),
    ]
}

/// One shard's worth of evolved state: partition a generated network two ways,
/// build shard 0's evaluator, push a few retraction-heavy batches through it
/// (mirroring into the sub-network exactly as the pipeline's workers do), and
/// return the (mirror, evaluator) pair a checkpoint would serialize.
fn evolved_shard_state(
    factory: &dyn ShardFactory,
    seed: u64,
) -> (
    ttc2018_graphblas::datagen::SocialNetwork,
    Box<dyn ttc2018_graphblas::ttc_social_media::shard::ShardEvaluator>,
) {
    let network = generate_workload(&GeneratorConfig::tiny(seed)).initial;
    let mut router = ShardRouter::new(&network, 2);
    let mut mirror = router.split_initial(&network).remove(0);
    let mut evaluator = factory.build(&mirror);
    let batches: Vec<_> = UpdateStream::new(
        &network,
        StreamConfig {
            seed: seed ^ 0xcc,
            batch_size: 16,
            deletion_weight: 0.3,
            ..StreamConfig::default()
        },
    )
    .take(5)
    .collect();
    for batch in &batches {
        let routed = router.route(batch);
        let ops = &routed[0];
        evaluator.apply(ops);
        ttc2018_graphblas::datagen::apply_changeset(&mut mirror, ops);
    }
    (mirror, evaluator)
}

/// The gate: snapshot → restore → snapshot is the identity on bytes, for every
/// backend — including after retraction-heavy updates, so the encoder's
/// canonical ordering is exercised on state that shrank as well as grew.
#[test]
fn snapshot_restore_snapshot_round_trips_to_identical_bytes_for_every_backend() {
    for (name, factory) in backends() {
        let (mirror, evaluator) = evolved_shard_state(factory.as_ref(), 7);
        let first = ShardCheckpoint {
            applied_through: 5,
            network: mirror,
            candidates: evaluator.candidates().to_vec(),
        };
        let bytes = first.encode();
        let decoded = ShardCheckpoint::decode(&bytes)
            .unwrap_or_else(|err| panic!("{name}: decode of a fresh snapshot failed: {err}"));
        assert_eq!(
            decoded, first,
            "{name}: decode is not the inverse of encode"
        );

        // the restore path: rebuild the evaluator from the decoded sub-network
        let restored = factory.build(&decoded.network);
        assert_eq!(
            restored.candidates(),
            &first.candidates[..],
            "{name}: a rebuild from the restored mirror diverged from the checkpointed candidates"
        );
        let second = ShardCheckpoint {
            applied_through: decoded.applied_through,
            network: decoded.network,
            candidates: restored.candidates().to_vec(),
        };
        assert_eq!(
            second.encode(),
            bytes,
            "{name}: snapshot → restore → snapshot changed bytes"
        );
    }
}

/// Every truncation prefix and a bit flip in every byte fail with a named
/// error — never a panic, never a silently wrong checkpoint.
#[test]
fn truncation_and_corruption_are_named_errors_for_every_backend() {
    for (name, factory) in backends() {
        let (mirror, evaluator) = evolved_shard_state(factory.as_ref(), 11);
        let bytes = ShardCheckpoint {
            applied_through: 5,
            network: mirror,
            candidates: evaluator.candidates().to_vec(),
        }
        .encode();

        for len in 0..bytes.len() {
            match ShardCheckpoint::decode(&bytes[..len]) {
                Err(CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch) => {}
                Err(other) => panic!("{name}: truncation to {len} gave {other}"),
                Ok(_) => panic!("{name}: truncation to {len} decoded successfully"),
            }
        }
        // flip one bit in a spread of positions (every byte would be slow on
        // the larger snapshots; a stride covers header, body and checksum)
        for at in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[at] ^= 0x40;
            assert!(
                ShardCheckpoint::decode(&corrupted).is_err(),
                "{name}: bit flip at {at} went undetected"
            );
        }
    }
}
