//! Differential chaos tests of crash-tolerant shard recovery (the ISSUE 6
//! acceptance gate): for shards ∈ {2, 4}, a pipelined run whose shard workers
//! are killed at arbitrary sequence numbers — before the first batch, at a
//! checkpoint boundary, at the final batch, twice on the same shard, on two
//! shards in one run — must, with recovery enabled, produce **byte-identical
//! per-batch** top-3 outputs to the uncrashed synchronous barrier driver on
//! retraction-heavy sf1 streams, for the incremental-CC and NMF shard backends
//! as well as the plain incremental one; plus a proptest killing proptest-chosen
//! (shard, seq) sets under proptest-chosen checkpoint cadences.

use proptest::prelude::*;
use ttc2018_graphblas::datagen::stream::{StreamConfig, UpdateStream};
use ttc2018_graphblas::datagen::{generate_scale_factor, ChangeSet, SocialNetwork};
use ttc2018_graphblas::nmf_baseline::NmfShardFactory;
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::pipeline::{
    IngestEngine, PipelineConfig, PipelinedEngine, SyncEngine,
};
use ttc2018_graphblas::ttc_social_media::recovery::{RecoveryConfig, RecoveryStats};
use ttc2018_graphblas::ttc_social_media::shard::{
    GraphBlasShardFactory, ShardBackend, ShardFactory, ShardedSolution,
};
use ttc2018_graphblas::ttc_social_media::stream::StreamDriver;

const SHARD_COUNTS: [usize; 2] = [2, 4];
const BATCHES: usize = 10;

fn sf1_network() -> SocialNetwork {
    generate_scale_factor(1).initial
}

/// A retraction-heavy micro-batch stream over the sf1 network (30% deletions),
/// the regime where a restore replaying stale state would surface as a wrong
/// rebuild decision in the watermark merge.
fn batches(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
    UpdateStream::new(
        network,
        StreamConfig {
            seed,
            batch_size: 64,
            deletion_weight: 0.3,
            ..StreamConfig::default()
        },
    )
    .take(count)
    .collect()
}

/// The shard backends the gate covers, by constructor: the three GraphBLAS
/// ones and the NMF dependency-record baseline.
fn factory_for(backend: &str, query: Query) -> Box<dyn ShardFactory> {
    match backend {
        "incremental" => Box::new(GraphBlasShardFactory::new(query, ShardBackend::Incremental)),
        "incremental-cc" => Box::new(GraphBlasShardFactory::new(
            query,
            ShardBackend::IncrementalCc,
        )),
        "nmf" => Box::new(NmfShardFactory::new(query)),
        other => panic!("unknown backend {other}"),
    }
}

/// Per-batch results of the uncrashed synchronous barrier driver — the
/// reference every recovered run must match byte for byte.
fn run_uncrashed(
    backend: &str,
    query: Query,
    shards: usize,
    network: &SocialNetwork,
    batches: &[ChangeSet],
) -> Vec<String> {
    let solution = ShardedSolution::with_factory(factory_for(backend, query), shards);
    let mut engine = SyncEngine::new(StreamDriver::default(), Box::new(solution));
    let mut stream = batches.iter().cloned();
    engine
        .run(network, &mut stream, batches.len())
        .expect("sync engine never truncates")
        .results
}

/// Per-batch results + recovery counters of a pipelined run with the given
/// kill schedule and checkpoint cadence.
fn run_recovered(
    backend: &str,
    query: Query,
    shards: usize,
    network: &SocialNetwork,
    batches: &[ChangeSet],
    kills: Vec<(usize, u64)>,
    checkpoint_every: u64,
) -> (Vec<String>, RecoveryStats) {
    let mut engine = PipelinedEngine::new(
        factory_for(backend, query),
        shards,
        PipelineConfig {
            kill_shards: kills,
            recovery: Some(RecoveryConfig { checkpoint_every }),
            ..PipelineConfig::default()
        },
    );
    let mut stream = batches.iter().cloned();
    let report = engine
        .run(network, &mut stream, batches.len())
        .expect("recovery-enabled runs complete despite kills");
    let recovery = report
        .pipeline
        .expect("pipelined engines report stats")
        .recovery
        .expect("recovery was enabled");
    (report.results, recovery)
}

/// The acceptance gate: kill every shard in turn at the chaos-critical
/// sequence numbers — 0 (before anything applied; the restore comes from the
/// initial checkpoint), the checkpoint boundary (the replay window is empty or
/// exactly one interval), mid-stream, and the final batch (no later send
/// exists to trip detection; the end-of-stream sweep must catch it) — for
/// shards ∈ {2, 4} and the incremental-CC and NMF backends. Byte-identical to
/// the uncrashed barrier driver every time.
#[test]
fn kills_at_critical_seqs_recover_byte_identically() {
    let network = sf1_network();
    let batches = batches(&network, 0xc4a5, BATCHES);
    let checkpoint_every = 4;
    // seq 4 == the first checkpoint boundary (applied_through 4), seq 9 == the
    // final batch of the 10-batch stream
    let critical_seqs: [u64; 4] = [0, 4, 6, (BATCHES - 1) as u64];
    for (backend, query) in [("incremental-cc", Query::Q2), ("nmf", Query::Q1)] {
        for &shards in &SHARD_COUNTS {
            let expected = run_uncrashed(backend, query, shards, &network, &batches);
            for (which, &seq) in critical_seqs.iter().enumerate() {
                let shard = which % shards; // every shard index gets killed
                let (results, recovery) = run_recovered(
                    backend,
                    query,
                    shards,
                    &network,
                    &batches,
                    vec![(shard, seq)],
                    checkpoint_every,
                );
                assert_eq!(
                    results, expected,
                    "{backend}/{query:?}/{shards} shards: kill ({shard}, {seq}) changed output"
                );
                assert_eq!(
                    (recovery.crashes, recovery.restores),
                    (1, 1),
                    "{backend}/{query:?}/{shards} shards: kill ({shard}, {seq}): {recovery:?}"
                );
            }
        }
    }
}

/// Double-kill, same shard: the replacement worker is killed too (its own
/// kill may even fire while it is still replaying the log), forcing a second
/// restore from a later checkpoint. Still byte-identical.
#[test]
fn killing_the_same_shard_twice_recovers_byte_identically() {
    let network = sf1_network();
    let batches = batches(&network, 0xd0b1, BATCHES);
    for &shards in &SHARD_COUNTS {
        let expected = run_uncrashed("incremental", Query::Q2, shards, &network, &batches);
        let (results, recovery) = run_recovered(
            "incremental",
            Query::Q2,
            shards,
            &network,
            &batches,
            vec![(1, 2), (1, 6)],
            3,
        );
        assert_eq!(
            results, expected,
            "{shards} shards: double kill changed output"
        );
        assert_eq!(recovery.crashes, 2, "{shards} shards: {recovery:?}");
        assert_eq!(recovery.restores, 2, "{shards} shards: {recovery:?}");
    }
}

/// Two different shards killed in one run — the supervisor must restore both
/// without wedging the watermark merge (the shared outcome queue exists for
/// exactly this case). Still byte-identical.
#[test]
fn killing_two_shards_in_one_run_recovers_byte_identically() {
    let network = sf1_network();
    let batches = batches(&network, 0x2b0b, BATCHES);
    for &shards in &SHARD_COUNTS {
        let expected = run_uncrashed("incremental-cc", Query::Q2, shards, &network, &batches);
        let (results, recovery) = run_recovered(
            "incremental-cc",
            Query::Q2,
            shards,
            &network,
            &batches,
            vec![(0, 3), (1, 5)],
            4,
        );
        assert_eq!(
            results, expected,
            "{shards} shards: two-shard kill changed output"
        );
        assert_eq!(recovery.crashes, 2, "{shards} shards: {recovery:?}");
        assert_eq!(recovery.restores, 2, "{shards} shards: {recovery:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill-at-any-seq: an arbitrary set of (shard, seq) kills under an
    /// arbitrary checkpoint cadence leaves every per-batch output
    /// byte-identical to the uncrashed barrier driver. Duplicate kills are
    /// kept — the same (shard, seq) entry twice kills the replacement during
    /// its own replay of that seq, the nastiest window there is.
    #[test]
    fn kills_at_arbitrary_seqs_are_output_invariant(
        seed in 0u64..1000,
        shards_idx in 0usize..SHARD_COUNTS.len(),
        checkpoint_every in 1u64..6,
        kills in prop::collection::vec((0usize..4, 0u64..8), 1..4),
    ) {
        let shards = SHARD_COUNTS[shards_idx];
        let network = ttc2018_graphblas::datagen::generate_workload(
            &ttc2018_graphblas::datagen::GeneratorConfig::tiny(seed),
        )
        .initial;
        let batches: Vec<ChangeSet> = UpdateStream::new(
            &network,
            StreamConfig {
                seed: seed ^ 0xfa11,
                batch_size: 16,
                deletion_weight: 0.3,
                ..StreamConfig::default()
            },
        )
        .take(8)
        .collect();
        let kills: Vec<(usize, u64)> = kills
            .into_iter()
            .map(|(shard, seq)| (shard % shards, seq))
            .collect();

        for query in [Query::Q1, Query::Q2] {
            let expected = run_uncrashed("incremental", query, shards, &network, &batches);
            let (results, recovery) = run_recovered(
                "incremental",
                query,
                shards,
                &network,
                &batches,
                kills.clone(),
                checkpoint_every,
            );
            prop_assert_eq!(
                &results,
                &expected,
                "{:?} diverged (shards {}, seed {}, kills {:?}, checkpoint every {})",
                query, shards, seed, kills, checkpoint_every
            );
            prop_assert!(
                recovery.crashes >= kills.len() as u64,
                "every scheduled kill fires at least once: {:?} vs {:?}",
                recovery, kills
            );
            prop_assert_eq!(recovery.crashes, recovery.restores, "{:?}", recovery);
        }
    }
}
