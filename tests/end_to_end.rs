//! Repository-level end-to-end tests: generate a workload with `datagen`, serialise it
//! through the CSV format, load it with the `ttc-social-media` loader, and run every
//! solution variant (GraphBLAS and the NMF-style baseline) to completion, checking
//! that they all agree — the full pipeline a user of this repository would run.

use ttc2018_graphblas::datagen::{self, GeneratorConfig};
use ttc2018_graphblas::nmf_baseline::{NmfBatch, NmfIncremental};
use ttc2018_graphblas::ttc_social_media::loader::load_workload_from_csv;
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::solution::{run_solution, Solution};
use ttc2018_graphblas::ttc_social_media::{
    GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc,
};

fn all_solutions(query: Query) -> Vec<Box<dyn Solution>> {
    let mut solutions: Vec<Box<dyn Solution>> = vec![
        Box::new(GraphBlasBatch::new(query, false)),
        Box::new(GraphBlasBatch::new(query, true)),
        Box::new(GraphBlasIncremental::new(query, false)),
        Box::new(GraphBlasIncremental::new(query, true)),
        Box::new(NmfBatch::new(query)),
        Box::new(NmfIncremental::new(query)),
    ];
    if query == Query::Q2 {
        solutions.push(Box::new(GraphBlasIncrementalCc::new()));
    }
    solutions
}

#[test]
fn full_pipeline_from_csv_to_results() {
    let workload = datagen::generate_workload(&GeneratorConfig::tiny(401));

    // Serialise and reload through the benchmark's CSV layout.
    let network_csv = datagen::network_to_csv(&workload.initial);
    let changeset_csvs: Vec<String> = workload
        .changesets
        .iter()
        .map(datagen::changeset_to_csv)
        .collect();
    let loaded = load_workload_from_csv(&network_csv, &changeset_csvs).unwrap();
    assert_eq!(loaded, workload);

    for query in [Query::Q1, Query::Q2] {
        let mut reference: Option<Vec<String>> = None;
        for mut solution in all_solutions(query) {
            let results = run_solution(solution.as_mut(), &loaded);
            assert_eq!(results.len(), loaded.changesets.len() + 1);
            match &reference {
                None => reference = Some(results),
                Some(expected) => {
                    assert_eq!(expected, &results, "{} disagrees", solution.name())
                }
            }
        }
    }
}

#[test]
fn paper_scale_factor_one_runs_end_to_end() {
    // The smallest real benchmark size (Table II row 1): ~1.3k nodes, ~2.5k edges.
    let workload = datagen::generate_scale_factor(1);
    assert!(workload.initial.node_count() > 1000);

    for query in [Query::Q1, Query::Q2] {
        let mut batch = GraphBlasBatch::new(query, false);
        let mut incremental = GraphBlasIncremental::new(query, true);
        let batch_results = run_solution(&mut batch, &workload);
        let incremental_results = run_solution(&mut incremental, &workload);
        assert_eq!(batch_results, incremental_results);
        // top-3 of a non-trivial graph should contain three distinct ids
        assert_eq!(batch_results.last().unwrap().split('|').count(), 3);
    }
}

#[test]
fn workload_statistics_match_table2_row_one() {
    let workload = datagen::generate_scale_factor(1);
    let nodes = workload.initial.node_count() as f64;
    let edges = workload.initial.edge_count() as f64;
    let inserts = workload.total_inserted_elements();
    assert!((nodes - 1274.0).abs() / 1274.0 < 0.15);
    assert!((edges - 2533.0).abs() / 2533.0 < 0.20);
    assert!((40..=140).contains(&inserts));
}
