//! Differential tests of the streaming update pipeline: on seeded micro-batch
//! streams — including like/friendship retractions, which the original TTC
//! workload never contains — every tool variant must agree with a full batch
//! recomputation after **every** micro-batch, and replaying N micro-batches must
//! land on the same result as one equivalent bulk changeset.

use ttc2018_graphblas::datagen::stream::{StreamConfig, UpdateStream};
use ttc2018_graphblas::datagen::{
    generate_workload, ChangeSet, GeneratorConfig, SocialNetwork, Workload,
};
use ttc2018_graphblas::nmf_baseline::NmfIncremental;
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::solution::{run_solution, Solution};
use ttc2018_graphblas::ttc_social_media::stream::{coalesce, StreamDriver};
use ttc2018_graphblas::ttc_social_media::{
    GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc,
};

fn network(seed: u64) -> SocialNetwork {
    generate_workload(&GeneratorConfig::tiny(seed)).initial
}

fn batches(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
    UpdateStream::new(
        network,
        StreamConfig {
            seed,
            batch_size: 10,
            // a heavy retraction share to stress the deletion paths
            deletion_weight: 0.3,
            ..StreamConfig::default()
        },
    )
    .take(count)
    .collect()
}

/// Every incremental variant agrees with the batch recomputation after every
/// single micro-batch of a retraction-heavy stream.
#[test]
fn all_variants_agree_on_streamed_batches_with_retractions() {
    for net_seed in [101u64, 202] {
        let network = network(net_seed);
        let batches = batches(&network, net_seed ^ 0xabc, 12);
        for query in [Query::Q1, Query::Q2] {
            let mut variants: Vec<Box<dyn Solution>> = vec![
                Box::new(GraphBlasBatch::new(query, false)),
                Box::new(GraphBlasBatch::new(query, true)),
                Box::new(GraphBlasIncremental::new(query, false)),
                Box::new(GraphBlasIncremental::new(query, true)),
                Box::new(NmfIncremental::new(query)),
            ];
            if query == Query::Q2 {
                variants.push(Box::new(GraphBlasIncrementalCc::new()));
            }
            let mut results: Vec<String> = variants
                .iter_mut()
                .map(|s| s.load_and_initial(&network))
                .collect();
            assert!(
                results.windows(2).all(|w| w[0] == w[1]),
                "initial evaluation disagrees: {results:?}"
            );
            for (batch_no, batch) in batches.iter().enumerate() {
                results = variants
                    .iter_mut()
                    .map(|s| s.update_and_reevaluate(batch))
                    .collect();
                for (variant, result) in variants.iter().zip(&results) {
                    assert_eq!(
                        result,
                        &results[0],
                        "{} disagrees at {query:?} batch {batch_no} (net seed {net_seed})",
                        variant.name()
                    );
                }
            }
        }
    }
}

/// N streamed micro-batches produce the same final Q1/Q2 results as one
/// equivalent bulk changeset (the ISSUE's streamed-vs-bulk differential).
#[test]
fn streamed_micro_batches_match_one_bulk_changeset() {
    let network = network(77);
    let batches = batches(&network, 0xfeed, 15);
    let bulk = ChangeSet {
        operations: batches
            .iter()
            .flat_map(|b| b.operations.iter().cloned())
            .collect(),
    };
    for query in [Query::Q1, Query::Q2] {
        let mut streamed = GraphBlasIncremental::new(query, false);
        let report = StreamDriver::default().run(
            &mut streamed,
            &network,
            batches.iter().cloned(),
            batches.len(),
        );

        let mut bulk_solution = GraphBlasBatch::new(query, false);
        let workload = Workload {
            initial: network.clone(),
            changesets: vec![bulk.clone()],
        };
        let bulk_results = run_solution(&mut bulk_solution, &workload);
        assert_eq!(
            Some(&report.final_result),
            bulk_results.last(),
            "query {query:?}: streamed end state diverges from the bulk changeset"
        );
    }
}

/// Coalescing a batch must not change any variant's answer — including the NMF
/// dependency-record propagation, which must treat a coalesced bare add of a
/// present edge (or bare retraction of an absent one) as a no-op.
#[test]
fn coalescing_preserves_semantics_across_variants() {
    let network = network(55);
    let batches = batches(&network, 0xc0a1, 10);
    for query in [Query::Q1, Query::Q2] {
        let make: Vec<fn(Query) -> Box<dyn Solution>> =
            vec![|q| Box::new(GraphBlasIncremental::new(q, false)), |q| {
                Box::new(NmfIncremental::new(q))
            }];
        for build in make {
            let mut raw = build(query);
            let mut merged = build(query);
            raw.load_and_initial(&network);
            merged.load_and_initial(&network);
            for batch in &batches {
                assert_eq!(
                    raw.update_and_reevaluate(batch),
                    merged.update_and_reevaluate(&coalesce(batch)),
                    "coalescing changed the {query:?} result of {}",
                    raw.name()
                );
            }
        }
    }
}

/// The update stream is deterministic across independent constructions.
#[test]
fn update_streams_are_reproducible() {
    let network = network(31);
    assert_eq!(batches(&network, 9, 8), batches(&network, 9, 8));
}
