//! Property-based differential testing between the GraphBLAS solutions and the
//! NMF-style object-model baseline: on randomly generated insert-only workloads, every
//! tool variant of the paper's Figure 5 must produce identical query results after the
//! initial evaluation and after every changeset.

use proptest::prelude::*;
use ttc2018_graphblas::datagen::{generate_workload, GeneratorConfig};
use ttc2018_graphblas::nmf_baseline::{NmfBatch, NmfIncremental};
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::solution::{run_solution, Solution};
use ttc2018_graphblas::ttc_social_media::{
    GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc,
};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..16,   // users
        1usize..5,    // posts
        1usize..20,   // comments
        0usize..20,   // friendships
        0usize..30,   // likes
        1usize..4,    // changesets
        1usize..20,   // total inserts
        any::<u64>(), // seed
    )
        .prop_map(
            |(users, posts, comments, friendships, likes, changesets, total_inserts, seed)| {
                GeneratorConfig {
                    scale_factor: 0,
                    users,
                    posts,
                    comments,
                    friendships,
                    likes,
                    changesets,
                    total_inserts,
                    skew: 0.8,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_tool_variant_agrees_on_q1(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut variants: Vec<Box<dyn Solution>> = vec![
            Box::new(GraphBlasBatch::new(Query::Q1, false)),
            Box::new(GraphBlasIncremental::new(Query::Q1, false)),
            Box::new(GraphBlasIncremental::new(Query::Q1, true)),
            Box::new(NmfBatch::new(Query::Q1)),
            Box::new(NmfIncremental::new(Query::Q1)),
        ];
        let reference = run_solution(variants[0].as_mut(), &workload);
        prop_assert_eq!(reference.len(), workload.changesets.len() + 1);
        for variant in variants.iter_mut().skip(1) {
            let results = run_solution(variant.as_mut(), &workload);
            prop_assert_eq!(&results, &reference, "{} disagrees with GraphBLAS Batch", variant.name());
        }
    }

    #[test]
    fn every_tool_variant_agrees_on_q2(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut variants: Vec<Box<dyn Solution>> = vec![
            Box::new(GraphBlasBatch::new(Query::Q2, false)),
            Box::new(GraphBlasIncremental::new(Query::Q2, false)),
            Box::new(GraphBlasIncremental::new(Query::Q2, true)),
            Box::new(GraphBlasIncrementalCc::new()),
            Box::new(NmfBatch::new(Query::Q2)),
            Box::new(NmfIncremental::new(Query::Q2)),
        ];
        let reference = run_solution(variants[0].as_mut(), &workload);
        for variant in variants.iter_mut().skip(1) {
            let results = run_solution(variant.as_mut(), &workload);
            prop_assert_eq!(&results, &reference, "{} disagrees with GraphBLAS Batch", variant.name());
        }
    }

    #[test]
    fn results_are_valid_top3_strings(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut nmf = NmfIncremental::new(Query::Q1);
        for line in run_solution(&mut nmf, &workload) {
            let ids: Vec<&str> = line.split('|').filter(|s| !s.is_empty()).collect();
            prop_assert!(ids.len() <= 3);
            for id in ids {
                prop_assert!(id.chars().all(|c| c.is_ascii_digit()), "non-numeric id {id:?}");
            }
        }
    }
}
