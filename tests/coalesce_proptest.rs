//! Property-based tests of `stream::coalesce`: applying a coalesced batch must be
//! indistinguishable from applying the raw operation sequence, for arbitrary
//! (valid-shaped) operation soups — including add → retract → add flips of the
//! same edge inside one batch, the case where "last operation wins" and a naive
//! "drop both" cancellation differ.

use proptest::prelude::*;
use ttc2018_graphblas::datagen::{ChangeOperation, ChangeSet, Comment};
use ttc2018_graphblas::ttc_social_media::graph::paper_example_network;
use ttc2018_graphblas::ttc_social_media::model::Query;
use ttc2018_graphblas::ttc_social_media::solution::Solution;
use ttc2018_graphblas::ttc_social_media::stream::{coalesce, StreamDriver, StreamDriverConfig};
use ttc2018_graphblas::ttc_social_media::GraphBlasIncremental;

const USERS: [u64; 4] = [101, 102, 103, 104];
const COMMENTS: [u64; 3] = [11, 12, 13];
const POSTS: [u64; 2] = [1, 2];

/// Compact encoding of one operation: `(kind, a, b)` indices into the fixed id
/// pools above. Decoding happens in [`materialize`], where fresh comment ids are
/// assigned sequentially.
fn op_strategy() -> impl Strategy<Value = (u8, usize, usize)> {
    (0u8..6, 0usize..4, 0usize..4)
}

fn batch_strategy() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    prop::collection::vec(op_strategy(), 1..40)
}

/// Decode an encoded batch against the paper-example network. `next_id` threads
/// fresh comment ids across batches of one test case.
fn materialize(encoded: &[(u8, usize, usize)], next_id: &mut u64) -> ChangeSet {
    let mut new_comments: Vec<u64> = Vec::new();
    // root post of every comment in the pool, so replies inherit their parent's
    // root and the generated trees stay structurally consistent (the fixed
    // pool's roots per paper_example_network: c11/c12 → p1, c13 → p2)
    let mut root_of: std::collections::HashMap<u64, u64> =
        [(11, 1), (12, 1), (13, 2)].into_iter().collect();
    let operations = encoded
        .iter()
        .map(|&(kind, a, b)| {
            let comment_pool = |idx: usize| {
                let pool_len = COMMENTS.len() + new_comments.len();
                let slot = idx % pool_len;
                if slot < COMMENTS.len() {
                    COMMENTS[slot]
                } else {
                    new_comments[slot - COMMENTS.len()]
                }
            };
            match kind {
                0 => ChangeOperation::AddLike {
                    user: USERS[a],
                    comment: comment_pool(b),
                },
                1 => ChangeOperation::RemoveLike {
                    user: USERS[a],
                    comment: comment_pool(b),
                },
                2 => ChangeOperation::AddFriendship {
                    a: USERS[a],
                    b: USERS[b],
                },
                3 => ChangeOperation::RemoveFriendship {
                    a: USERS[a],
                    b: USERS[b],
                },
                4 => {
                    // a new comment under a post; its id enters the like pool
                    let id = *next_id;
                    *next_id += 1;
                    new_comments.push(id);
                    let post = POSTS[a % POSTS.len()];
                    root_of.insert(id, post);
                    ChangeOperation::AddComment {
                        comment: Comment {
                            id,
                            timestamp: 100 + id,
                            author: USERS[b],
                            parent: post,
                            root_post: post,
                        },
                    }
                }
                _ => {
                    // a reply to an existing comment, rooted wherever its
                    // parent's tree is rooted
                    let id = *next_id;
                    *next_id += 1;
                    let parent = comment_pool(a);
                    let root_post = root_of[&parent];
                    new_comments.push(id);
                    root_of.insert(id, root_post);
                    ChangeOperation::AddComment {
                        comment: Comment {
                            id,
                            timestamp: 100 + id,
                            author: USERS[b],
                            parent,
                            root_post,
                        },
                    }
                }
            }
        })
        .collect();
    ChangeSet { operations }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Driver output (per-batch results and end state) is identical with and
    /// without coalescing, for both queries.
    #[test]
    fn coalescing_never_changes_driver_output(
        encoded in prop::collection::vec(batch_strategy(), 1..5)
    ) {
        let network = paper_example_network();
        let mut next_id = 500;
        let batches: Vec<ChangeSet> = encoded
            .iter()
            .map(|batch| materialize(batch, &mut next_id))
            .collect();
        for query in [Query::Q1, Query::Q2] {
            // per-batch equivalence on live solutions
            let mut raw = GraphBlasIncremental::new(query, false);
            let mut merged = GraphBlasIncremental::new(query, false);
            raw.load_and_initial(&network);
            merged.load_and_initial(&network);
            for batch in &batches {
                prop_assert_eq!(
                    raw.update_and_reevaluate(batch),
                    merged.update_and_reevaluate(&coalesce(batch)),
                    "coalescing changed a {:?} batch result", query
                );
            }

            // end-to-end driver equivalence (the driver applies coalescing itself)
            let coalescing = StreamDriver::new(StreamDriverConfig {
                warmup_batches: 0,
                coalesce: true,
            });
            let sequential = StreamDriver::new(StreamDriverConfig {
                warmup_batches: 0,
                coalesce: false,
            });
            let mut a = GraphBlasIncremental::new(query, false);
            let mut b = GraphBlasIncremental::new(query, false);
            let report_a =
                coalescing.run(&mut a, &network, batches.iter().cloned(), batches.len());
            let report_b =
                sequential.run(&mut b, &network, batches.iter().cloned(), batches.len());
            prop_assert_eq!(report_a.final_result, report_b.final_result);
            prop_assert_eq!(report_a.total_operations, report_b.total_operations);
            prop_assert!(report_a.applied_operations <= report_b.applied_operations);
        }
    }

    /// Coalescing is idempotent and never grows a batch.
    #[test]
    fn coalesce_is_idempotent(encoded in batch_strategy()) {
        let mut next_id = 900;
        let batch = materialize(&encoded, &mut next_id);
        let once = coalesce(&batch);
        let twice = coalesce(&once);
        prop_assert_eq!(&once.operations, &twice.operations);
        prop_assert!(once.operations.len() <= batch.operations.len());
    }
}

/// The add → retract → add flip within one batch: the edge must end up present,
/// and coalescing must keep exactly the final add.
#[test]
fn add_retract_add_within_one_batch_keeps_the_edge() {
    let network = paper_example_network();
    let batch = ChangeSet {
        operations: vec![
            // u1's like of c1 flips on-off-on
            ChangeOperation::AddLike {
                user: 101,
                comment: 11,
            },
            ChangeOperation::RemoveLike {
                user: 101,
                comment: 11,
            },
            ChangeOperation::AddLike {
                user: 101,
                comment: 11,
            },
            // friendship u1–u3 flips off-on-off (ends absent; starts absent too)
            ChangeOperation::AddFriendship { a: 101, b: 103 },
            ChangeOperation::RemoveFriendship { a: 103, b: 101 },
            // friendship u1–u2 exists initially and flips off-on (ends present)
            ChangeOperation::RemoveFriendship { a: 101, b: 102 },
            ChangeOperation::AddFriendship { a: 102, b: 101 },
        ],
    };
    let merged = coalesce(&batch);
    assert_eq!(
        merged.operations,
        vec![
            ChangeOperation::AddLike {
                user: 101,
                comment: 11
            },
            ChangeOperation::RemoveFriendship { a: 103, b: 101 },
            ChangeOperation::AddFriendship { a: 102, b: 101 },
        ]
    );
    for query in [Query::Q1, Query::Q2] {
        let mut raw = GraphBlasIncremental::new(query, false);
        let mut coalesced = GraphBlasIncremental::new(query, false);
        raw.load_and_initial(&network);
        coalesced.load_and_initial(&network);
        assert_eq!(
            raw.update_and_reevaluate(&batch),
            coalesced.update_and_reevaluate(&merged),
            "{query:?} diverged on the add-retract-add flip"
        );
    }
}
