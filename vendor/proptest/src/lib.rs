//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the property tests use: range and tuple [`Strategy`]s,
//! [`collection::vec`], [`ProptestConfig::with_cases`], the [`proptest!`] macro and
//! the `prop_assert*` macros. Inputs are generated from a deterministic per-test
//! xorshift stream; there is **no shrinking** — a failing case panics with the case
//! number and seed so it can be replayed by re-running the test.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Deterministic generator backing the test cases (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create from a seed (0 is remapped to a fixed non-zero constant).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                if self.start >= self.end {
                    // empty range: degrade to the start, like a degenerate Just
                    return self.start;
                }
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

/// Strategy for "any value of `T`" (proptest's `any`), for full-range integers.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A constant strategy (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
    A, B, C, D, E, F1
)(A, B, C, D, E, F1, G)(A, B, C, D, E, F1, G, H));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `element` and a length drawn from
    /// `len` (half-open, like proptest's `SizeRange` usage in this workspace).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Configuration of a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Create a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property, failing the case (not panicking) on `false`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item becomes
/// a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // deterministic per-test seed: hash of the test name
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf29ce484222325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100000001b3)
                });
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(seed ^ ((case as u64) << 32 | 0x5DEECE66D));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "property {} failed at case {case}/{} (seed {seed:#x}):\n{error}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(5);
        let mut b = crate::TestRng::new(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let strategy = prop::collection::vec((0..10usize, 0u64..100), 0..40);
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!(v.len() < 40);
            for (i, x) in v {
                assert!(i < 10);
                assert!(x < 100);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_ranges_hold(x in 3..9usize, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }

        #[test]
        fn vectors_are_bounded(v in prop::collection::vec(0..100usize, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unreachable_code)]
            fn always_fails(_x in 0..10usize) {
                prop_assert!(false, "intended failure");
            }
        }
        always_fails();
    }
}
