//! Offline stand-in for the `serde_json` crate.
//!
//! Covers the subset the benchmark binaries use: the [`Value`] tree, the [`json!`]
//! constructor macro (object / array / scalar forms with expression values), and
//! [`to_string`] / [`to_string_pretty`] over anything [`AsJson`]. There is no parser
//! and no serde-data-model bridge — output only.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integers are kept exact so they print without a fraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            Number::F64(_) => write!(f, "null"), // JSON has no NaN/Inf
        }
    }
}

/// A JSON value tree. Object keys are sorted (BTreeMap) for stable output.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                $variant(v)
            }
        }
    )*};
}

impl_value_from!(
    bool => Value::Bool,
    String => Value::String,
    Vec<Value> => Value::Array,
);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

/// References to any owned convertible type (covers the `&String` / `&u64` / `&f64`
/// bindings that fall out of iterating maps). `&str` is handled by its own impl
/// above (`str` is unsized, so this blanket does not apply to it).
impl<T: Clone + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        v.clone().into()
    }
}

macro_rules! impl_value_from_number {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::$variant(v as $cast))
            }
        }
    )*};
}

impl_value_from_number!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        let pad = |out: &mut String, level: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, pretty, indent + 1);
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    escape_into(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, pretty, indent + 1);
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, false, 0);
        f.write_str(&out)
    }
}

/// Types renderable as a JSON [`Value`].
pub trait AsJson {
    /// Convert to a value tree.
    fn as_json(&self) -> Value;
}

impl AsJson for Value {
    fn as_json(&self) -> Value {
        self.clone()
    }
}

impl<T: AsJson> AsJson for Vec<T> {
    fn as_json(&self) -> Value {
        Value::Array(self.iter().map(AsJson::as_json).collect())
    }
}

impl<T: AsJson> AsJson for [T] {
    fn as_json(&self) -> Value {
        Value::Array(self.iter().map(AsJson::as_json).collect())
    }
}

impl<T: AsJson + ?Sized> AsJson for &T {
    fn as_json(&self) -> Value {
        (**self).as_json()
    }
}

/// Error type kept for signature compatibility; rendering never fails.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error")
    }
}

impl std::error::Error for Error {}

/// Render compactly.
pub fn to_string<T: AsJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.as_json().write(&mut out, false, 0);
    Ok(out)
}

/// Render with two-space indentation.
pub fn to_string_pretty<T: AsJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.as_json().write(&mut out, true, 0);
    Ok(out)
}

/// Build a [`Value`] from a JSON-shaped literal. Supports `null`, scalars and
/// expressions, arrays, and objects with string-literal keys and expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert(($key).to_string(), $crate::Value::from($value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_pretty_print() {
        let label = "GraphBLAS Batch".to_string();
        let v = json!({
            "tool": &label,
            "seconds": 0.5,
            "scale_factor": 8u64,
            "ok": true,
        });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"tool\": \"GraphBLAS Batch\""));
        assert!(pretty.contains("\"scale_factor\": 8"));
        assert!(!pretty.contains("8.0"));
    }

    #[test]
    fn array_of_objects_round_trips_shape() {
        let rows: Vec<Value> = (0..2).map(|i| json!({ "i": i })).collect();
        let s = to_string(&rows).unwrap();
        assert_eq!(s, r#"[{"i":0},{"i":1}]"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "msg": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"msg":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn nested_arrays() {
        let v = json!([1u64, 2u64]);
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
    }
}
