//! Offline stand-in for the `serde_json` crate.
//!
//! Covers the subset the benchmark binaries use: the [`Value`] tree, the [`json!`]
//! constructor macro (object / array / scalar forms with expression values),
//! [`to_string`] / [`to_string_pretty`] over anything [`AsJson`], and [`from_str`]
//! — a strict recursive-descent parser back into [`Value`] (what the bench gate
//! uses to diff throughput reports). There is no serde-data-model bridge.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integers are kept exact so they print without a fraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            Number::F64(_) => write!(f, "null"), // JSON has no NaN/Inf
        }
    }
}

/// A JSON value tree. Object keys are sorted (BTreeMap) for stable output.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                $variant(v)
            }
        }
    )*};
}

impl_value_from!(
    bool => Value::Bool,
    String => Value::String,
    Vec<Value> => Value::Array,
);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

/// References to any owned convertible type (covers the `&String` / `&u64` / `&f64`
/// bindings that fall out of iterating maps). `&str` is handled by its own impl
/// above (`str` is unsized, so this blanket does not apply to it).
impl<T: Clone + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        v.clone().into()
    }
}

macro_rules! impl_value_from_number {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::$variant(v as $cast))
            }
        }
    )*};
}

impl_value_from_number!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Member of an object by key (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        let pad = |out: &mut String, level: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, pretty, indent + 1);
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    escape_into(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, pretty, indent + 1);
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, false, 0);
        f.write_str(&out)
    }
}

/// Types renderable as a JSON [`Value`].
pub trait AsJson {
    /// Convert to a value tree.
    fn as_json(&self) -> Value;
}

impl AsJson for Value {
    fn as_json(&self) -> Value {
        self.clone()
    }
}

impl<T: AsJson> AsJson for Vec<T> {
    fn as_json(&self) -> Value {
        Value::Array(self.iter().map(AsJson::as_json).collect())
    }
}

impl<T: AsJson> AsJson for [T] {
    fn as_json(&self) -> Value {
        Value::Array(self.iter().map(AsJson::as_json).collect())
    }
}

impl<T: AsJson + ?Sized> AsJson for &T {
    fn as_json(&self) -> Value {
        (**self).as_json()
    }
}

/// Rendering or parsing error. Rendering never fails; parsing reports the byte
/// offset and what went wrong.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render compactly.
pub fn to_string<T: AsJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.as_json().write(&mut out, false, 0);
    Ok(out)
}

/// Render with two-space indentation.
pub fn to_string_pretty<T: AsJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.as_json().write(&mut out, true, 0);
    Ok(out)
}

/// Parse a JSON document into a [`Value`]. Strict: the whole input must be one
/// JSON value (plus surrounding whitespace); trailing garbage is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // surrogate pairs are not emitted by this workspace's
                            // writers; reject them instead of mis-decoding
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so boundaries are valid)
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::Number(Number::F64(v)))
        } else if text.starts_with('-') {
            let v: i64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::Number(Number::I64(v)))
        } else {
            let v: u64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::Number(Number::U64(v)))
        }
    }
}

/// Build a [`Value`] from a JSON-shaped literal. Supports `null`, scalars and
/// expressions, arrays, and objects with string-literal keys and expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert(($key).to_string(), $crate::Value::from($value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_pretty_print() {
        let label = "GraphBLAS Batch".to_string();
        let v = json!({
            "tool": &label,
            "seconds": 0.5,
            "scale_factor": 8u64,
            "ok": true,
        });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"tool\": \"GraphBLAS Batch\""));
        assert!(pretty.contains("\"scale_factor\": 8"));
        assert!(!pretty.contains("8.0"));
    }

    #[test]
    fn array_of_objects_round_trips_shape() {
        let rows: Vec<Value> = (0..2).map(|i| json!({ "i": i })).collect();
        let s = to_string(&rows).unwrap();
        assert_eq!(s, r#"[{"i":0},{"i":1}]"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "msg": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"msg":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn nested_arrays() {
        let v = json!([1u64, 2u64]);
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
    }

    #[test]
    fn parse_round_trips_written_values() {
        let v = json!({
            "name": "stream \"q1\"\nline",
            "count": 42u64,
            "ratio": 0.125,
            "negative": -3i64,
            "ok": true,
            "nothing": Value::Null,
            "items": json!([1u64, 2u64]),
        });
        let text = to_string(&v).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, v);
        // pretty output parses to the same tree
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parse_accessors() {
        let v = from_str(r#"{"a": 1, "b": "x", "c": [true, 2.5]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        let c = v.get("c").and_then(Value::as_array).unwrap();
        assert_eq!(c[0].as_bool(), Some(true));
        assert_eq!(c[1].as_f64(), Some(2.5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_unicode_escapes_and_exponents() {
        let v = from_str(r#"{"s": "a\u00e9b", "e": 1e3, "m": -2.5e-2}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\u{e9}b"));
        assert_eq!(v.get("e").and_then(Value::as_f64), Some(1000.0));
        assert_eq!(v.get("m").and_then(Value::as_f64), Some(-0.025));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1} extra",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }
}
