//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` defines [`Serialize`]/[`Deserialize`] as marker traits (no
//! methods), so the derives only need to emit `impl serde::Serialize for T {}` — no
//! `syn`/`quote` required. Types are parsed just far enough to find the name and the
//! generic parameter list; `where`-clauses and lifetime/const generics beyond plain
//! idents are not supported (nothing in this workspace uses them on derived types).

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The name and generic parameters of the deriving type.
struct Target {
    name: String,
    /// Generic parameter idents, e.g. `["T", "U"]` for `struct Pair<T, U>`.
    generics: Vec<String>,
}

/// Find the ident following `struct`/`enum`, plus its generic parameter names.
fn parse_target(input: TokenStream) -> Target {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected type name after `{word}`, found {other:?}"),
                };
                let mut generics = Vec::new();
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        tokens.next();
                        let mut depth = 1usize;
                        let mut expect_param = true;
                        for token in tokens.by_ref() {
                            match token {
                                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                TokenTree::Punct(p) if p.as_char() == '>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                    expect_param = true;
                                }
                                TokenTree::Ident(id) if depth == 1 && expect_param => {
                                    generics.push(id.to_string());
                                    expect_param = false;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                return Target { name, generics };
            }
        }
        // skip attribute groups, visibility, doc comments
        let _ = matches!(token, TokenTree::Group(ref g) if g.delimiter() == Delimiter::Bracket);
    }
    panic!("serde_derive: input is neither a struct nor an enum");
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let target = parse_target(input);
    let impl_text = if target.generics.is_empty() {
        format!("impl {} for {} {{}}", trait_path, target.name)
    } else {
        let params = target.generics.join(", ");
        let bounds = target
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "impl<{params}> {trait_path} for {}<{params}> where {bounds} {{}}",
            target.name
        )
    };
    impl_text.parse().expect("generated impl parses")
}

/// Derive the `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Derive the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
