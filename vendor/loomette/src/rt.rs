//! The deterministic scheduler and the DFS interleaving explorer.
//!
//! # Execution model
//!
//! Every managed thread (the explorer's body thread plus anything spawned via
//! [`crate::thread::spawn`]) runs on a real OS thread, but only **one** of them
//! executes at a time: a token (`State::current`) names the running thread and
//! everyone else parks on a condvar. The token changes hands only at *yield
//! points* — immediately **before** every shadowed synchronization operation
//! (lock, send, recv, spawn, join, endpoint drop, …) — so a whole execution is
//! a sequential interleaving of atomic ops, exactly the granularity loom uses.
//!
//! At each yield point the scheduler computes the set of runnable threads. If
//! more than one could run, that is a *branch*: the decision `(chosen index,
//! option count)` is recorded in the execution's trace. The explorer then does
//! an exhaustive depth-first search over these decisions: after each execution
//! it backtracks the trace to the deepest decision with an untried option and
//! replays the next execution along that prefix. A trace is therefore a
//! complete, replayable description of an interleaving (see [`replay`]).
//!
//! # Bounding and pruning
//!
//! * **Preemption bounding** ([`Config::max_preemptions`]): switching away
//!   from a thread that could have continued costs one unit of budget;
//!   once spent, only cooperative switches (at blocking ops) remain. This is
//!   the classic CHESS-style bound — most real concurrency bugs need very few
//!   preemptions.
//! * **State-hash pruning** ([`Config::prune`]): each thread folds every op it
//!   completes into a rolling hash chain (`op tag` ⊕ the object's post-op
//!   version); the global fingerprint over `(status, chain)` of all threads —
//!   plus the preemption budget already spent — identifies a scheduler state.
//!   Reaching an already-visited fingerprint beyond the replayed prefix aborts
//!   the execution: depth-first order guarantees the matching state's subtree
//!   has already been fully explored (a fingerprint can only match an
//!   *ancestor* of the current path if a state recurs along a path, which the
//!   strictly-growing hash chains rule out, up to hash collisions).
//!
//! # Teardown
//!
//! When an execution must die early (deadlock found, state pruned, a thread
//! panicked, limits hit) the scheduler sets an abort flag and every managed
//! thread tears itself down by panicking with the private [`AbortToken`]
//! sentinel the next time it reaches the scheduler. User-level
//! `catch_unwind` must not swallow that sentinel — use
//! [`crate::panic::catch_unwind`], which re-raises it.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

// ---------------------------------------------------------------------------
// Hashing helpers (SplitMix64 finalizer, same idiom as the workspace crates)
// ---------------------------------------------------------------------------

pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Op-kind constants folded into per-thread hash chains.
pub(crate) const OP_LOCK: u64 = 1;
pub(crate) const OP_UNLOCK: u64 = 2;
pub(crate) const OP_SEND: u64 = 3;
pub(crate) const OP_RECV: u64 = 4;
pub(crate) const OP_TRY_SEND: u64 = 5;
pub(crate) const OP_DROP: u64 = 6;
pub(crate) const OP_SPAWN: u64 = 7;
pub(crate) const OP_JOIN: u64 = 8;
pub(crate) const OP_YIELD: u64 = 9;
pub(crate) const OP_ONCE: u64 = 10;
pub(crate) const OP_CV: u64 = 11;

/// Tag identifying one op on one object, for the rolling hash chains.
pub(crate) fn op_tag(kind: u64, obj: u64) -> u64 {
    mix(obj.rotate_left(17) ^ kind)
}

// ---------------------------------------------------------------------------
// Public result types
// ---------------------------------------------------------------------------

/// Exploration bounds and knobs for [`explore`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of preemptive context switches per execution
    /// (`None` = unbounded, i.e. truly exhaustive but exponential).
    pub max_preemptions: Option<usize>,
    /// Stop after this many executions even if the space is not exhausted.
    pub max_executions: usize,
    /// Abort any single execution after this many shadowed ops (runaway guard).
    pub max_ops: u64,
    /// Enable state-hash subtree pruning.
    pub prune: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_preemptions: Some(2),
            max_executions: 500_000,
            max_ops: 1_000_000,
            prune: true,
        }
    }
}

/// What kind of property violation the checker found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// No thread was runnable but some were blocked.
    Deadlock,
    /// A managed thread (or the body closure) panicked.
    Panic,
}

/// A failed interleaving, with the decision trace that reproduces it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The class of failure.
    pub kind: ViolationKind,
    /// Human-readable description (panic payload or blocked-thread set).
    pub message: String,
    /// The branch decisions of the failing interleaving; feed to [`replay`].
    pub trace: Vec<usize>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Panic => "panic",
        };
        writeln!(f, "model-check violation: {kind}")?;
        writeln!(f, "  {}", self.message)?;
        write!(f, "  replay trace: {:?}", self.trace)
    }
}

/// Summary of one [`explore`] run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of executions performed (including pruned ones).
    pub executions: usize,
    /// Number of distinct scheduler-state fingerprints inserted.
    pub distinct_states: usize,
    /// Executions cut short because they reached an already-explored state.
    pub pruned_executions: usize,
    /// Total shadowed ops across all executions.
    pub total_ops: u64,
    /// Whether the bounded schedule space was exhausted.
    pub complete: bool,
    /// The first violation found, if any (exploration stops on it).
    pub violation: Option<Violation>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executions, {} distinct states, {} pruned, {} ops, complete: {}, violation: {}",
            self.executions,
            self.distinct_states,
            self.pruned_executions,
            self.total_ops,
            self.complete,
            match &self.violation {
                None => "none".to_string(),
                Some(v) => format!("{:?}", v.kind),
            }
        )
    }
}

// ---------------------------------------------------------------------------
// Scheduler internals
// ---------------------------------------------------------------------------

/// Sentinel panic payload that tears an execution down. Deliberately private:
/// user code cannot construct or catch-and-keep it (the [`crate::panic`] shim
/// re-raises it by type check).
pub(crate) struct AbortToken;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

struct ThreadSlot {
    status: Status,
    /// Rolling fingerprint chain over the ops this thread has completed.
    chain: u64,
    /// Threads blocked in `join` on this one.
    join_waiters: Vec<usize>,
}

struct State {
    threads: Vec<ThreadSlot>,
    /// Thread currently holding the run token.
    current: usize,
    /// Index of the next branch decision (into the prefix during replay).
    branch: usize,
    /// Branch decisions made so far: `(chosen index, number of options)`.
    trace: Vec<(usize, usize)>,
    preemptions: usize,
    ops: u64,
    next_obj: u64,
    abort: bool,
    violation: Option<Violation>,
    pruned: bool,
    limit_hit: bool,
    /// Fingerprints first seen during this execution.
    fresh_states: usize,
}

/// What one attempt of a shadowed op produced. The attempt closure runs with
/// the scheduler lock held and may lock the op's *object* (lock order:
/// scheduler state, then object state).
pub(crate) enum Attempt<R> {
    /// The op completed: `obs` is the object's post-op version (folded into
    /// the thread's hash chain) and `wake` lists threads to make runnable.
    Ready {
        value: R,
        obs: u64,
        wake: Vec<usize>,
    },
    /// The op cannot proceed; the closure has registered this thread in the
    /// object's waiter list and will be retried after a wake-up.
    Block,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    prefix: Vec<usize>,
    max_preemptions: Option<usize>,
    max_ops: u64,
    prune: bool,
    visited: Arc<Mutex<HashSet<u64>>>,
}

struct ExecOutcome {
    trace: Vec<(usize, usize)>,
    violation: Option<Violation>,
    pruned: bool,
    limit_hit: bool,
    ops: u64,
    fresh_states: usize,
}

impl Scheduler {
    fn new(cfg: &Config, prefix: Vec<usize>, visited: Arc<Mutex<HashSet<u64>>>) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: Vec::new(),
                current: 0,
                branch: 0,
                trace: Vec::new(),
                preemptions: 0,
                ops: 0,
                next_obj: 0,
                abort: false,
                violation: None,
                pruned: false,
                limit_hit: false,
                fresh_states: 0,
            }),
            cv: Condvar::new(),
            prefix,
            max_preemptions: cfg.max_preemptions,
            max_ops: cfg.max_ops,
            prune: cfg.prune,
            visited,
        }
    }

    /// Poisoning policy: the state mutex is poisoned on purpose whenever an
    /// abort panics while holding it; every lock site recovers the guard —
    /// the state is kept consistent before any panic.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a new managed thread and return its tid.
    pub(crate) fn register(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        st.threads.push(ThreadSlot {
            status: Status::Runnable,
            chain: mix(0x5eed ^ tid as u64),
            join_waiters: Vec::new(),
        });
        tid
    }

    /// Fresh object id for a shadowed Mutex or channel.
    pub(crate) fn new_object(&self) -> u64 {
        let mut st = self.lock_state();
        st.next_obj += 1;
        st.next_obj
    }

    fn abort_token_panic(&self, st: MutexGuard<'_, State>) -> ! {
        self.cv.notify_all();
        drop(st);
        std::panic::panic_any(AbortToken);
    }

    fn wake(st: &mut State, tids: &[usize]) {
        for &t in tids {
            if st.threads[t].status == Status::Blocked {
                st.threads[t].status = Status::Runnable;
            }
        }
    }

    fn fingerprint(st: &State, from: usize) -> u64 {
        let mut h = mix(st.preemptions as u64 ^ 0xfeed_face);
        h = mix(h ^ from as u64);
        for (i, t) in st.threads.iter().enumerate() {
            let s = match t.status {
                Status::Runnable => 1u64,
                Status::Blocked => 2,
                Status::Finished => 3,
            };
            h = mix(h ^ mix(((i as u64) << 32) | s) ^ t.chain);
        }
        h
    }

    /// Pick the next thread to run. Called at every yield point by the thread
    /// currently holding the token (`from`), or by a finishing thread.
    ///
    /// May panic with [`AbortToken`] (deadlock found, or subtree pruned) —
    /// callers must let that propagate.
    fn reschedule(&self, st: &mut MutexGuard<'_, State>, from: usize) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let blocked: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Blocked)
                .map(|(i, _)| i)
                .collect();
            if !blocked.is_empty() {
                if st.violation.is_none() {
                    let trace: Vec<usize> = st.trace.iter().map(|&(c, _)| c).collect();
                    st.violation = Some(Violation {
                        kind: ViolationKind::Deadlock,
                        message: format!(
                            "threads {blocked:?} are blocked and no thread is runnable"
                        ),
                        trace,
                    });
                }
                st.abort = true;
                self.cv.notify_all();
                // Panics with the guard held; lock_state recovers the poison.
                std::panic::panic_any(AbortToken);
            }
            // Everyone finished: nothing to schedule.
            self.cv.notify_all();
            return;
        }

        let from_runnable = st.threads[from].status == Status::Runnable;
        let mut options = runnable;
        if let Some(budget) = self.max_preemptions {
            // Budget spent: the running thread may not be preempted while it
            // can still make progress.
            if from_runnable && st.preemptions >= budget && options.contains(&from) {
                options.retain(|&t| t == from);
            }
        }

        let pick = if options.len() == 1 {
            // Forced move: not a branch, not recorded.
            options[0]
        } else {
            let b = st.branch;
            let idx = if b < self.prefix.len() {
                // Replaying a previously recorded decision.
                let i = self.prefix[b];
                debug_assert!(i < options.len(), "replay diverged: decision {b}");
                i.min(options.len() - 1)
            } else {
                // Fresh territory: prune if this scheduler state was fully
                // explored by an earlier execution (see module docs for the
                // soundness argument).
                if self.prune {
                    let h = Self::fingerprint(st, from);
                    let fresh = {
                        let mut seen = self.visited.lock().unwrap_or_else(|e| e.into_inner());
                        seen.insert(h)
                    };
                    if fresh {
                        st.fresh_states += 1;
                    } else {
                        st.pruned = true;
                        st.abort = true;
                        self.cv.notify_all();
                        std::panic::panic_any(AbortToken);
                    }
                }
                0
            };
            st.trace.push((idx, options.len()));
            st.branch += 1;
            options[idx]
        };

        if from_runnable && pick != from {
            st.preemptions += 1;
        }
        st.current = pick;
        self.cv.notify_all();
    }

    fn wait_turn<'a>(&self, mut st: MutexGuard<'a, State>, tid: usize) -> MutexGuard<'a, State> {
        loop {
            if st.abort {
                self.abort_token_panic(st);
            }
            if st.current == tid && st.threads[tid].status == Status::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// First action of a spawned thread: wait to be granted the token before
    /// running any user code, so executions are fully serialized.
    pub(crate) fn thread_begin(&self, tid: usize) {
        let st = self.lock_state();
        let st = self.wait_turn(st, tid);
        drop(st);
    }

    /// Perform one shadowed op at a yield point. `attempt` runs under the
    /// scheduler lock; it is retried after every wake-up until it completes.
    pub(crate) fn op<R>(&self, tid: usize, tag: u64, mut attempt: impl FnMut() -> Attempt<R>) -> R {
        let mut st = self.lock_state();
        if st.abort {
            self.abort_token_panic(st);
        }
        if st.current == tid {
            // Yield-before-op: let the scheduler branch on who acts next.
            self.reschedule(&mut st, tid);
        }
        st = self.wait_turn(st, tid);
        loop {
            match attempt() {
                Attempt::Ready { value, obs, wake } => {
                    Self::wake(&mut st, &wake);
                    let slot = &mut st.threads[tid];
                    slot.chain = mix(slot.chain ^ tag ^ mix(obs));
                    st.ops += 1;
                    if st.ops > self.max_ops {
                        st.limit_hit = true;
                        st.abort = true;
                        self.abort_token_panic(st);
                    }
                    return value;
                }
                Attempt::Block => {
                    st.threads[tid].status = Status::Blocked;
                    self.reschedule(&mut st, tid);
                    st = self.wait_turn(st, tid);
                }
            }
        }
    }

    /// Block until `target` has finished (the shadow half of `join`).
    pub(crate) fn join_wait(&self, tid: usize, target: usize) {
        let mut st = self.lock_state();
        if st.abort {
            self.abort_token_panic(st);
        }
        if st.current == tid {
            self.reschedule(&mut st, tid);
        }
        st = self.wait_turn(st, tid);
        loop {
            if st.threads[target].status == Status::Finished {
                let slot = &mut st.threads[tid];
                slot.chain = mix(slot.chain ^ op_tag(OP_JOIN, target as u64) ^ mix(1));
                st.ops += 1;
                if st.ops > self.max_ops {
                    st.limit_hit = true;
                    st.abort = true;
                    self.abort_token_panic(st);
                }
                return;
            }
            if !st.threads[target].join_waiters.contains(&tid) {
                st.threads[target].join_waiters.push(tid);
            }
            st.threads[tid].status = Status::Blocked;
            self.reschedule(&mut st, tid);
            st = self.wait_turn(st, tid);
        }
    }

    /// Record that a managed thread is done. A genuine (non-abort) panic
    /// becomes a [`ViolationKind::Panic`] and aborts the whole execution.
    pub(crate) fn finished(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock_state();
        st.threads[tid].status = Status::Finished;
        let waiters = std::mem::take(&mut st.threads[tid].join_waiters);
        Self::wake(&mut st, &waiters);
        if let Some(message) = panic_msg {
            if st.violation.is_none() {
                let trace: Vec<usize> = st.trace.iter().map(|&(c, _)| c).collect();
                st.violation = Some(Violation {
                    kind: ViolationKind::Panic,
                    message,
                    trace,
                });
            }
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        if st.current == tid {
            // Hand the token on (may detect a deadlock and panic — the
            // wrapper lets that tear the real thread down).
            self.reschedule(&mut st, tid);
        } else {
            self.cv.notify_all();
        }
    }

    /// Wake threads from outside a yield point. Used by endpoint/guard drops
    /// that run while unwinding, where yielding would be unsound (the
    /// unwinding region executes atomically as far as the schedule is
    /// concerned).
    pub(crate) fn wake_external(&self, tids: &[usize]) {
        if tids.is_empty() {
            return;
        }
        let mut st = self.lock_state();
        Self::wake(&mut st, tids);
        self.cv.notify_all();
    }

    /// Block the explorer until every managed thread has logically finished.
    fn wait_quiescent(&self) {
        let mut st = self.lock_state();
        loop {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_outcome(&self) -> ExecOutcome {
        let st = self.lock_state();
        ExecOutcome {
            trace: st.trace.clone(),
            violation: st.violation.clone(),
            pruned: st.pruned,
            limit_hit: st.limit_hit,
            ops: st.ops,
            fresh_states: st.fresh_states,
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local runtime context
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) tid: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CURRENT.try_with(|c| c.borrow().clone()).unwrap_or(None)
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    let _ = CURRENT.try_with(|c| *c.borrow_mut() = ctx);
}

fn in_model() -> bool {
    current_ctx().is_some()
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" output for panics raised inside model executions — the
/// explorer deliberately panics thousands of times (abort sentinels, injected
/// failures) and the noise would drown real output. Outside a model context
/// the previous hook runs unchanged.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if in_model() {
                return;
            }
            prev(info);
        }));
    });
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

fn run_once<F: FnMut()>(
    cfg: &Config,
    prefix: Vec<usize>,
    visited: &Arc<Mutex<HashSet<u64>>>,
    body: &mut F,
) -> ExecOutcome {
    install_panic_hook();
    let sched = Arc::new(Scheduler::new(cfg, prefix, Arc::clone(visited)));
    let tid = sched.register();
    debug_assert_eq!(tid, 0, "body thread must be tid 0");
    set_ctx(Some(Ctx {
        sched: Arc::clone(&sched),
        tid,
    }));
    let outcome = catch_unwind(AssertUnwindSafe(&mut *body));
    let msg = match &outcome {
        Err(payload) if !payload.is::<AbortToken>() => Some(panic_message(payload.as_ref())),
        _ => None,
    };
    // Recording the body's completion can itself detect a deadlock and raise
    // the abort sentinel; contain it on the explorer thread.
    let _ = catch_unwind(AssertUnwindSafe(|| sched.finished(0, msg)));
    set_ctx(None);
    sched.wait_quiescent();
    sched.take_outcome()
}

/// Exhaustively explore the bounded interleavings of `body`.
///
/// `body` is run once per interleaving; it may spawn threads via
/// [`crate::thread::spawn`] and communicate through the shadow primitives in
/// [`crate::sync`]. Exploration stops at the first violation (deadlock or
/// panic — assertion failures inside `body` count), or when the bounded
/// space is exhausted (`Report::complete`), or at [`Config::max_executions`].
pub fn explore<F: FnMut()>(config: Config, mut body: F) -> Report {
    let visited: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let mut prefix: Vec<usize> = Vec::new();
    let mut report = Report::default();
    loop {
        let out = run_once(&config, prefix.clone(), &visited, &mut body);
        report.executions += 1;
        report.total_ops += out.ops;
        report.distinct_states += out.fresh_states;
        if out.pruned {
            report.pruned_executions += 1;
        }
        if out.violation.is_some() {
            report.violation = out.violation;
            break;
        }
        if out.limit_hit {
            break;
        }
        // DFS backtrack: drop exhausted decisions, advance the deepest live one.
        let mut trace = out.trace;
        while let Some(&(chosen, options)) = trace.last() {
            if chosen + 1 < options {
                break;
            }
            trace.pop();
        }
        match trace.last_mut() {
            None => {
                report.complete = true;
                break;
            }
            Some(last) => last.0 += 1,
        }
        prefix = trace.iter().map(|&(c, _)| c).collect();
        if report.executions >= config.max_executions {
            break;
        }
    }
    report
}

/// Re-run `body` once along a recorded decision `trace` (from
/// [`Violation::trace`]): deterministic reproduction of a failing
/// interleaving. Decisions beyond the trace fall back to first-option.
pub fn replay<F: FnMut()>(config: Config, trace: &[usize], mut body: F) -> Report {
    let visited: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let mut cfg = config;
    cfg.prune = false;
    let out = run_once(&cfg, trace.to_vec(), &visited, &mut body);
    Report {
        executions: 1,
        distinct_states: 0,
        pruned_executions: 0,
        total_ops: out.ops,
        complete: false,
        violation: out.violation,
    }
}
