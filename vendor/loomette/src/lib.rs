//! # loomette — a minimal loom-style deterministic model checker
//!
//! Vendored stand-in for [loom](https://github.com/tokio-rs/loom): shadow
//! `Mutex` / `mpsc` channel / `thread::spawn` primitives driven by a
//! depth-first scheduler that exhaustively enumerates bounded thread
//! interleavings, with CHESS-style preemption bounding and state-hash
//! subtree pruning. Built for model-checking the `ttc-social-media`
//! crash-recovery pipeline; deliberately small (no unsafe, no dependencies,
//! no atomics emulation) rather than general.
//!
//! ```
//! use loomette::{explore, Config};
//! use loomette::sync::Mutex;
//! use loomette::thread;
//! use std::sync::Arc;
//!
//! let report = explore(Config::default(), || {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             thread::spawn(move || {
//!                 let mut guard = counter.lock().expect("not poisoned");
//!                 *guard += 1;
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().expect("no panic");
//!     }
//!     assert_eq!(*counter.lock().expect("not poisoned"), 2);
//! });
//! assert!(report.complete && report.violation.is_none());
//! ```
//!
//! See [`explore`] for the checking entry point, [`replay`] for deterministic
//! reproduction of a recorded failing interleaving, and the [`rt`
//! module](crate::sync) docs for the execution model and its soundness
//! caveats (interleavings are explored at shadow-op granularity; panic
//! unwinds execute atomically; pruning is exact up to hash collisions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rt;

pub mod panic;
pub mod sync;
pub mod thread;

pub use rt::{explore, replay, Config, Report, Violation, ViolationKind};
