//! Shadow synchronization primitives: [`Mutex`] and the [`mpsc`] channels.
//!
//! Each primitive is *dual-mode*. Created inside a model execution (i.e. on a
//! thread managed by [`crate::explore`]) it participates in the deterministic
//! schedule: every `lock`/`send`/`recv`/endpoint-drop is a yield point and the
//! blocking semantics are simulated by the scheduler. Created outside, it
//! delegates directly to the real `std` primitive — passthrough mode — so the
//! same code runs unmodified in production builds.
//!
//! Drops that happen while a panic is unwinding update the shadow state
//! *silently* (waiters are woken but no yield point is inserted): the unwind
//! region executes atomically under the model. This matches how the pipeline
//! uses panics (a crashed worker's endpoint drops are its death notification).

use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::sync::{LockResult, PoisonError};

use crate::rt::{
    current_ctx, op_tag, Attempt, Ctx, Scheduler, OP_CV, OP_DROP, OP_LOCK, OP_ONCE, OP_RECV,
    OP_SEND, OP_TRY_SEND, OP_UNLOCK,
};

/// Return the active model context if `sched` belongs to it.
fn ctx_for(sched: &Arc<Scheduler>) -> Option<Ctx> {
    current_ctx().filter(|ctx| Arc::ptr_eq(&ctx.sched, sched))
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

struct MutexModel {
    held: bool,
    version: u64,
    waiters: Vec<usize>,
}

struct MutexCtl {
    sched: Arc<Scheduler>,
    id: u64,
    model: std::sync::Mutex<MutexModel>,
}

impl MutexCtl {
    // Poisoning policy: the model mutex only guards bookkeeping that is kept
    // consistent across panics; recover the guard unconditionally.
    fn model(&self) -> std::sync::MutexGuard<'_, MutexModel> {
        self.model.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with the same surface as [`std::sync::Mutex`],
/// scheduled deterministically inside model executions.
pub struct Mutex<T: ?Sized> {
    ctl: Option<Arc<MutexCtl>>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex; it binds to the model execution active at creation
    /// time (if any).
    pub fn new(value: T) -> Self {
        let ctl = current_ctx().map(|ctx| {
            Arc::new(MutexCtl {
                id: ctx.sched.new_object(),
                sched: ctx.sched,
                model: std::sync::Mutex::new(MutexModel {
                    held: false,
                    version: 0,
                    waiters: Vec::new(),
                }),
            })
        });
        Mutex {
            ctl,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (under the model: yielding) until available.
    /// Poisoning is propagated exactly like [`std::sync::Mutex::lock`].
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model_held = match &self.ctl {
            Some(ctl) => match ctx_for(&ctl.sched) {
                Some(ctx) => {
                    ctx.sched.op(ctx.tid, op_tag(OP_LOCK, ctl.id), || {
                        let mut m = ctl.model();
                        if m.held {
                            if !m.waiters.contains(&ctx.tid) {
                                m.waiters.push(ctx.tid);
                            }
                            Attempt::Block
                        } else {
                            m.held = true;
                            m.version += 1;
                            Attempt::Ready {
                                value: (),
                                obs: m.version,
                                wake: Vec::new(),
                            }
                        }
                    });
                    Some(Arc::clone(ctl))
                }
                None => None,
            },
            None => None,
        };
        // The real lock is uncontended whenever the model schedule is active
        // (only one thread runs at a time and the shadow state is `held`).
        match self.inner.lock() {
            Ok(inner) => Ok(MutexGuard {
                inner: Some(inner),
                model_held,
                lock: self,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                inner: Some(poisoned.into_inner()),
                model_held,
                lock: self,
            })),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the shadow lock (and
/// wakes waiters) on drop. Carries a back-reference to its mutex so
/// [`Condvar::wait`] can release and reacquire the same lock.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model_held: Option<Arc<MutexCtl>>,
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the shadow one so the next holder the
        // scheduler picks finds it free.
        drop(self.inner.take());
        if let Some(ctl) = self.model_held.take() {
            match ctx_for(&ctl.sched) {
                Some(ctx) if !std::thread::panicking() => {
                    ctx.sched.op(ctx.tid, op_tag(OP_UNLOCK, ctl.id), || {
                        let mut m = ctl.model();
                        m.held = false;
                        m.version += 1;
                        let wake = std::mem::take(&mut m.waiters);
                        Attempt::Ready {
                            value: (),
                            obs: m.version,
                            wake,
                        }
                    });
                }
                _ => {
                    // Unwinding (or a foreign thread): silent release.
                    let wake = {
                        let mut m = ctl.model();
                        m.held = false;
                        m.version += 1;
                        std::mem::take(&mut m.waiters)
                    };
                    ctl.sched.wake_external(&wake);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

struct CvModel {
    /// Threads parked in `wait`, not yet notified.
    waiting: Vec<usize>,
    /// Threads a notify has released; each consumes its own entry on wake-up.
    notified: Vec<usize>,
    version: u64,
}

struct CvCtl {
    sched: Arc<Scheduler>,
    id: u64,
    model: std::sync::Mutex<CvModel>,
}

impl CvCtl {
    // Poisoning policy: the model mutex only guards waiter bookkeeping that is
    // kept consistent across panics; recover the guard unconditionally.
    fn model(&self) -> std::sync::MutexGuard<'_, CvModel> {
        self.model.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable with the same surface as [`std::sync::Condvar`] (the
/// subset the workspace uses: `wait` / `notify_one` / `notify_all`), scheduled
/// deterministically inside model executions.
///
/// The shadow `wait` registers the thread in the waiter list *before*
/// releasing the guard — the atomic release-and-sleep a real condvar
/// guarantees — so the explorer can prove the classic lost-wakeup race absent:
/// a notify between the predicate check and the park always finds the waiter.
/// Spurious wake-ups are possible in both modes; callers loop on a predicate.
pub struct Condvar {
    ctl: Option<Arc<CvCtl>>,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable; it binds to the model execution active at
    /// creation time (if any).
    pub fn new() -> Self {
        let ctl = current_ctx().map(|ctx| {
            Arc::new(CvCtl {
                id: ctx.sched.new_object(),
                sched: ctx.sched,
                model: std::sync::Mutex::new(CvModel {
                    waiting: Vec::new(),
                    notified: Vec::new(),
                    version: 0,
                }),
            })
        });
        Condvar {
            ctl,
            inner: std::sync::Condvar::new(),
        }
    }

    /// Release `guard`, sleep until notified, and reacquire the lock.
    /// Poisoning is propagated exactly like [`std::sync::Condvar::wait`].
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if let Some(ctl) = &self.ctl {
            if let Some(ctx) = ctx_for(&ctl.sched) {
                // 1. Register as a waiter while still holding the lock, so a
                //    notify that races the release cannot be lost.
                ctx.sched.op(ctx.tid, op_tag(OP_CV, ctl.id), || {
                    let mut m = ctl.model();
                    if !m.waiting.contains(&ctx.tid) {
                        m.waiting.push(ctx.tid);
                    }
                    m.version += 1;
                    Attempt::Ready {
                        value: (),
                        obs: m.version,
                        wake: Vec::new(),
                    }
                });
                // 2. Release the lock (wakes lock waiters as usual).
                let lock = guard.lock;
                drop(guard);
                // 3. Park until a notify moves this thread to `notified`;
                //    consume the token on wake-up.
                ctx.sched.op(ctx.tid, op_tag(OP_CV, ctl.id), || {
                    let mut m = ctl.model();
                    match m.notified.iter().position(|&t| t == ctx.tid) {
                        Some(at) => {
                            m.notified.remove(at);
                            m.version += 1;
                            Attempt::Ready {
                                value: (),
                                obs: m.version,
                                wake: Vec::new(),
                            }
                        }
                        None => Attempt::Block,
                    }
                });
                // 4. Reacquire the lock through the normal modeled path.
                return lock.lock();
            }
        }
        // Passthrough: delegate to the real condvar, keeping the guard shell
        // (and any shadow lock state) intact across the wait.
        let mut guard = guard;
        let std_guard = guard.inner.take().expect("guard accessed after release");
        match self.inner.wait(std_guard) {
            Ok(reacquired) => {
                guard.inner = Some(reacquired);
                Ok(guard)
            }
            Err(poisoned) => {
                guard.inner = Some(poisoned.into_inner());
                Err(PoisonError::new(guard))
            }
        }
    }

    /// Wake one waiter (the longest-waiting one under the model, for
    /// determinism).
    pub fn notify_one(&self) {
        if let Some(ctl) = &self.ctl {
            match ctx_for(&ctl.sched) {
                Some(ctx) => {
                    ctx.sched.op(ctx.tid, op_tag(OP_CV, ctl.id), || {
                        let mut m = ctl.model();
                        let wake = if m.waiting.is_empty() {
                            Vec::new()
                        } else {
                            let tid = m.waiting.remove(0);
                            m.notified.push(tid);
                            vec![tid]
                        };
                        m.version += 1;
                        Attempt::Ready {
                            value: (),
                            obs: m.version,
                            wake,
                        }
                    });
                }
                None => {
                    // Foreign thread (or unwinding): silent shadow update.
                    let wake = {
                        let mut m = ctl.model();
                        let wake = if m.waiting.is_empty() {
                            Vec::new()
                        } else {
                            let tid = m.waiting.remove(0);
                            m.notified.push(tid);
                            vec![tid]
                        };
                        m.version += 1;
                        wake
                    };
                    ctl.sched.wake_external(&wake);
                }
            }
            return;
        }
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        if let Some(ctl) = &self.ctl {
            match ctx_for(&ctl.sched) {
                Some(ctx) => {
                    ctx.sched.op(ctx.tid, op_tag(OP_CV, ctl.id), || {
                        let mut m = ctl.model();
                        let wake = std::mem::take(&mut m.waiting);
                        m.notified.extend(wake.iter().copied());
                        m.version += 1;
                        Attempt::Ready {
                            value: (),
                            obs: m.version,
                            wake,
                        }
                    });
                }
                None => {
                    let wake = {
                        let mut m = ctl.model();
                        let wake = std::mem::take(&mut m.waiting);
                        m.notified.extend(wake.iter().copied());
                        m.version += 1;
                        wake
                    };
                    ctl.sched.wake_external(&wake);
                }
            }
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

struct OnceModel {
    set: bool,
    version: u64,
}

struct OnceCtl {
    sched: Arc<Scheduler>,
    id: u64,
    model: std::sync::Mutex<OnceModel>,
}

impl OnceCtl {
    // Poisoning policy: the model mutex only guards two plain integers that
    // are kept consistent across panics; recover the guard unconditionally.
    fn model(&self) -> std::sync::MutexGuard<'_, OnceModel> {
        self.model.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A write-once cell with the same surface as [`std::sync::OnceLock`] (the
/// subset the workspace uses: `get` / `set` / `take`), scheduled
/// deterministically inside model executions.
///
/// `get` and `set` are yield points — the shadow half of the "one atomic
/// store publishes, one atomic load observes" pattern the serve module's
/// view chain is built on — so the explorer enumerates every ordering of a
/// publisher's `set` against concurrent readers' `get`s. Neither operation
/// ever blocks, exactly like the real primitive.
pub struct OnceLock<T> {
    ctl: Option<Arc<OnceCtl>>,
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Create an empty cell; it binds to the model execution active at
    /// creation time (if any).
    pub fn new() -> Self {
        let ctl = current_ctx().map(|ctx| {
            Arc::new(OnceCtl {
                id: ctx.sched.new_object(),
                sched: ctx.sched,
                model: std::sync::Mutex::new(OnceModel {
                    set: false,
                    version: 0,
                }),
            })
        });
        OnceLock {
            ctl,
            inner: std::sync::OnceLock::new(),
        }
    }

    /// Read the value if one has been published. Never blocks; under the model
    /// the read is a yield point so the scheduler can order it against a
    /// concurrent `set`.
    pub fn get(&self) -> Option<&T> {
        if let Some(ctl) = &self.ctl {
            if let Some(ctx) = ctx_for(&ctl.sched) {
                ctx.sched.op(ctx.tid, op_tag(OP_ONCE, ctl.id), || {
                    let m = ctl.model();
                    Attempt::Ready {
                        value: (),
                        obs: m.version,
                        wake: Vec::new(),
                    }
                });
            }
        }
        self.inner.get()
    }

    /// Publish a value; fails with `Err(value)` when one was already
    /// published. Under the model the store is a yield point.
    pub fn set(&self, value: T) -> Result<(), T> {
        if let Some(ctl) = &self.ctl {
            if let Some(ctx) = ctx_for(&ctl.sched) {
                ctx.sched.op(ctx.tid, op_tag(OP_ONCE, ctl.id), || {
                    let mut m = ctl.model();
                    if !m.set {
                        m.set = true;
                        m.version += 1;
                    }
                    Attempt::Ready {
                        value: (),
                        obs: m.version,
                        wake: Vec::new(),
                    }
                });
            }
            // A model cell touched from a foreign thread falls through to the
            // real store: there is no blocking semantics to simulate and no
            // scheduling decision to record.
        }
        self.inner.set(value)
    }

    /// Remove and return the value, emptying the cell. Requires `&mut self`,
    /// so no other thread can observe the cell concurrently — there is no
    /// interleaving to explore and the shadow state is updated silently (the
    /// drop-during-unwind path of view-chain reclamation relies on this
    /// staying panic-safe).
    pub fn take(&mut self) -> Option<T> {
        if let Some(ctl) = &self.ctl {
            let mut m = ctl.model();
            m.set = false;
            m.version += 1;
        }
        self.inner.take()
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        OnceLock::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// mpsc channels
// ---------------------------------------------------------------------------

/// Multi-producer single-consumer channels mirroring [`std::sync::mpsc`].
pub mod mpsc {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    use super::*;

    struct ChanState<T> {
        queue: VecDeque<T>,
        /// `None` for the unbounded [`channel`]; rendezvous (`bound == 0`)
        /// is approximated with capacity 1.
        cap: Option<usize>,
        senders: usize,
        recv_alive: bool,
        version: u64,
        send_waiters: Vec<usize>,
        recv_waiters: Vec<usize>,
    }

    struct Chan<T> {
        sched: Arc<Scheduler>,
        id: u64,
        state: std::sync::Mutex<ChanState<T>>,
    }

    impl<T> Chan<T> {
        // Poisoning policy: channel bookkeeping stays consistent across
        // panics; recover the guard unconditionally.
        fn state(&self) -> std::sync::MutexGuard<'_, ChanState<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }

        fn new_pair(ctx: Ctx, cap: Option<usize>) -> (Arc<Chan<T>>, Arc<Chan<T>>) {
            let chan = Arc::new(Chan {
                id: ctx.sched.new_object(),
                sched: ctx.sched,
                state: std::sync::Mutex::new(ChanState {
                    queue: VecDeque::new(),
                    cap: cap.map(|c| c.max(1)),
                    senders: 1,
                    recv_alive: true,
                    version: 0,
                    send_waiters: Vec::new(),
                    recv_waiters: Vec::new(),
                }),
            });
            (Arc::clone(&chan), chan)
        }

        fn send_blocking(&self, item: T) -> Result<(), SendError<T>> {
            match ctx_for(&self.sched) {
                Some(ctx) => {
                    let mut slot = Some(item);
                    ctx.sched.op(ctx.tid, op_tag(OP_SEND, self.id), || {
                        let mut c = self.state();
                        if !c.recv_alive {
                            return Attempt::Ready {
                                value: Err(SendError(
                                    slot.take().expect("send payload consumed twice"),
                                )),
                                obs: c.version,
                                wake: Vec::new(),
                            };
                        }
                        if let Some(cap) = c.cap {
                            if c.queue.len() >= cap {
                                if !c.send_waiters.contains(&ctx.tid) {
                                    c.send_waiters.push(ctx.tid);
                                }
                                return Attempt::Block;
                            }
                        }
                        c.queue
                            .push_back(slot.take().expect("send payload consumed twice"));
                        c.version += 1;
                        let wake = std::mem::take(&mut c.recv_waiters);
                        Attempt::Ready {
                            value: Ok(()),
                            obs: c.version,
                            wake,
                        }
                    })
                }
                // A model endpoint on a foreign thread is outside the checked
                // schedule; fail fast rather than race the model silently.
                None => Err(SendError(item)),
            }
        }

        fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            match ctx_for(&self.sched) {
                Some(ctx) => {
                    let mut slot = Some(item);
                    ctx.sched.op(ctx.tid, op_tag(OP_TRY_SEND, self.id), || {
                        let mut c = self.state();
                        if !c.recv_alive {
                            return Attempt::Ready {
                                value: Err(TrySendError::Disconnected(
                                    slot.take().expect("send payload consumed twice"),
                                )),
                                obs: c.version,
                                wake: Vec::new(),
                            };
                        }
                        if let Some(cap) = c.cap {
                            if c.queue.len() >= cap {
                                return Attempt::Ready {
                                    value: Err(TrySendError::Full(
                                        slot.take().expect("send payload consumed twice"),
                                    )),
                                    obs: c.version,
                                    wake: Vec::new(),
                                };
                            }
                        }
                        c.queue
                            .push_back(slot.take().expect("send payload consumed twice"));
                        c.version += 1;
                        let wake = std::mem::take(&mut c.recv_waiters);
                        Attempt::Ready {
                            value: Ok(()),
                            obs: c.version,
                            wake,
                        }
                    })
                }
                None => Err(TrySendError::Disconnected(item)),
            }
        }

        fn recv(&self) -> Result<T, RecvError> {
            match ctx_for(&self.sched) {
                Some(ctx) => ctx.sched.op(ctx.tid, op_tag(OP_RECV, self.id), || {
                    let mut c = self.state();
                    if let Some(v) = c.queue.pop_front() {
                        c.version += 1;
                        let wake = std::mem::take(&mut c.send_waiters);
                        Attempt::Ready {
                            value: Ok(v),
                            obs: c.version,
                            wake,
                        }
                    } else if c.senders == 0 {
                        Attempt::Ready {
                            value: Err(RecvError),
                            obs: c.version,
                            wake: Vec::new(),
                        }
                    } else {
                        if !c.recv_waiters.contains(&ctx.tid) {
                            c.recv_waiters.push(ctx.tid);
                        }
                        Attempt::Block
                    }
                }),
                None => Err(RecvError),
            }
        }

        fn drop_sender(&self) {
            let clean_ctx = if std::thread::panicking() {
                None
            } else {
                ctx_for(&self.sched)
            };
            match clean_ctx {
                Some(ctx) => {
                    ctx.sched.op(ctx.tid, op_tag(OP_DROP, self.id), || {
                        let mut c = self.state();
                        c.senders -= 1;
                        let wake = if c.senders == 0 {
                            c.version += 1;
                            std::mem::take(&mut c.recv_waiters)
                        } else {
                            Vec::new()
                        };
                        Attempt::Ready {
                            value: (),
                            obs: c.version,
                            wake,
                        }
                    });
                }
                None => {
                    let wake = {
                        let mut c = self.state();
                        c.senders -= 1;
                        if c.senders == 0 {
                            c.version += 1;
                            std::mem::take(&mut c.recv_waiters)
                        } else {
                            Vec::new()
                        }
                    };
                    self.sched.wake_external(&wake);
                }
            }
        }

        fn drop_receiver(&self) {
            let clean_ctx = if std::thread::panicking() {
                None
            } else {
                ctx_for(&self.sched)
            };
            match clean_ctx {
                Some(ctx) => {
                    ctx.sched.op(ctx.tid, op_tag(OP_DROP, self.id), || {
                        let mut c = self.state();
                        c.recv_alive = false;
                        c.version += 1;
                        let wake = std::mem::take(&mut c.send_waiters);
                        Attempt::Ready {
                            value: (),
                            obs: c.version,
                            wake,
                        }
                    });
                }
                None => {
                    let wake = {
                        let mut c = self.state();
                        c.recv_alive = false;
                        c.version += 1;
                        std::mem::take(&mut c.send_waiters)
                    };
                    self.sched.wake_external(&wake);
                }
            }
        }
    }

    enum SenderRepr<T> {
        Std(std::sync::mpsc::Sender<T>),
        Model(Arc<Chan<T>>),
    }

    enum SyncSenderRepr<T> {
        Std(std::sync::mpsc::SyncSender<T>),
        Model(Arc<Chan<T>>),
    }

    enum ReceiverRepr<T> {
        Std(std::sync::mpsc::Receiver<T>),
        Model(Arc<Chan<T>>),
    }

    /// The sending half of an unbounded [`channel`].
    pub struct Sender<T>(SenderRepr<T>);

    /// The sending half of a bounded [`sync_channel`].
    pub struct SyncSender<T>(SyncSenderRepr<T>);

    /// The receiving half of either channel flavor.
    pub struct Receiver<T>(ReceiverRepr<T>);

    /// Create an unbounded channel (see [`std::sync::mpsc::channel`]).
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        match current_ctx() {
            None => {
                let (tx, rx) = std::sync::mpsc::channel();
                (Sender(SenderRepr::Std(tx)), Receiver(ReceiverRepr::Std(rx)))
            }
            Some(ctx) => {
                let (a, b) = Chan::new_pair(ctx, None);
                (
                    Sender(SenderRepr::Model(a)),
                    Receiver(ReceiverRepr::Model(b)),
                )
            }
        }
    }

    /// Create a bounded channel (see [`std::sync::mpsc::sync_channel`]).
    /// Under the model, a rendezvous bound of 0 is approximated with 1.
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        match current_ctx() {
            None => {
                let (tx, rx) = std::sync::mpsc::sync_channel(bound);
                (
                    SyncSender(SyncSenderRepr::Std(tx)),
                    Receiver(ReceiverRepr::Std(rx)),
                )
            }
            Some(ctx) => {
                let (a, b) = Chan::new_pair(ctx, Some(bound));
                (
                    SyncSender(SyncSenderRepr::Model(a)),
                    Receiver(ReceiverRepr::Model(b)),
                )
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; never blocks. Errors when the receiver is gone.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderRepr::Std(tx) => tx.send(item),
                SenderRepr::Model(ch) => ch.send_blocking(item),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderRepr::Std(tx) => Sender(SenderRepr::Std(tx.clone())),
                SenderRepr::Model(ch) => {
                    ch.state().senders += 1;
                    Sender(SenderRepr::Model(Arc::clone(ch)))
                }
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let SenderRepr::Model(ch) = &self.0 {
                ch.drop_sender();
            }
        }
    }

    impl<T> SyncSender<T> {
        /// Send a value, blocking while the queue is at capacity. Errors when
        /// the receiver is gone.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SyncSenderRepr::Std(tx) => tx.send(item),
                SyncSenderRepr::Model(ch) => ch.send_blocking(item),
            }
        }

        /// Non-blocking send attempt.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SyncSenderRepr::Std(tx) => tx.try_send(item),
                SyncSenderRepr::Model(ch) => ch.try_send(item),
            }
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SyncSenderRepr::Std(tx) => SyncSender(SyncSenderRepr::Std(tx.clone())),
                SyncSenderRepr::Model(ch) => {
                    ch.state().senders += 1;
                    SyncSender(SyncSenderRepr::Model(Arc::clone(ch)))
                }
            }
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            if let SyncSenderRepr::Model(ch) = &self.0 {
                ch.drop_sender();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next value, blocking until one arrives or all senders
        /// are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.0 {
                ReceiverRepr::Std(rx) => rx.recv(),
                ReceiverRepr::Model(ch) => ch.recv(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let ReceiverRepr::Model(ch) = &self.0 {
                ch.drop_receiver();
            }
        }
    }

    /// Owning iterator over received values, ending at disconnect.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }
}
