//! Panic containment that cooperates with the scheduler's teardown sentinel.

pub use std::panic::{resume_unwind, AssertUnwindSafe, UnwindSafe};

use crate::rt::AbortToken;

/// Like [`std::panic::catch_unwind`], but re-raises the scheduler's private
/// abort sentinel instead of returning it: user-level panic containment (for
/// example a supervisor catching a crashed worker) must never swallow an
/// execution teardown, or an aborted interleaving would be misreported as an
/// ordinary crash.
pub fn catch_unwind<F: FnOnce() -> R + UnwindSafe, R>(f: F) -> std::thread::Result<R> {
    match std::panic::catch_unwind(f) {
        Err(payload) if payload.is::<AbortToken>() => resume_unwind(payload),
        other => other,
    }
}
