//! Shadow threading: [`spawn`], [`JoinHandle`], [`sleep`], [`yield_now`].
//!
//! Inside a model execution, spawned threads are real OS threads registered
//! with the scheduler: the child waits for the run token before executing any
//! user code, so the whole execution stays serialized and deterministic.
//! `join` first waits (as a shadow op) for the target to finish logically,
//! then joins the real thread. Outside a model execution everything delegates
//! to [`std::thread`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::rt::{
    current_ctx, op_tag, panic_message, set_ctx, AbortToken, Attempt, Ctx, Scheduler, OP_SPAWN,
    OP_YIELD,
};

/// Handle to a spawned thread; mirrors [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    real: std::thread::JoinHandle<T>,
    model: Option<(Arc<Scheduler>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. Under the model
    /// this is a blocking shadow op (a deadlock involving `join` is detected
    /// like any other).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, target)) = &self.model {
            if let Some(ctx) = current_ctx().filter(|c| Arc::ptr_eq(&c.sched, sched)) {
                ctx.sched.join_wait(ctx.tid, *target);
            }
        }
        self.real.join()
    }

    /// Whether the underlying thread has finished.
    pub fn is_finished(&self) -> bool {
        self.real.is_finished()
    }
}

/// Spawn a thread; mirrors [`std::thread::spawn`]. Registered with the active
/// model execution if there is one.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_ctx() {
        None => JoinHandle {
            real: std::thread::spawn(f),
            model: None,
        },
        Some(ctx) => {
            let tid = ctx.sched.register();
            let sched = Arc::clone(&ctx.sched);
            let child_sched = Arc::clone(&sched);
            let real = std::thread::spawn(move || {
                let sched = child_sched;
                set_ctx(Some(Ctx {
                    sched: Arc::clone(&sched),
                    tid,
                }));
                // Serialize: no user code runs until the scheduler grants the
                // token (thread_begin panics with the abort sentinel if the
                // execution is already tearing down).
                let begun = catch_unwind(AssertUnwindSafe(|| sched.thread_begin(tid)));
                let out = match begun {
                    Ok(()) => catch_unwind(AssertUnwindSafe(f)),
                    Err(payload) => Err(payload),
                };
                let msg = match &out {
                    Err(payload) if !payload.is::<AbortToken>() => {
                        Some(panic_message(payload.as_ref()))
                    }
                    _ => None,
                };
                sched.finished(tid, msg);
                match out {
                    Ok(value) => {
                        set_ctx(None);
                        value
                    }
                    // Keep the model context set during the final unwind so
                    // the panic hook stays suppressed.
                    Err(payload) => resume_unwind(payload),
                }
            });
            // The spawn itself is a yield point: from here the child competes
            // for the token like any runnable thread.
            ctx.sched
                .op(ctx.tid, op_tag(OP_SPAWN, tid as u64), || Attempt::Ready {
                    value: (),
                    obs: tid as u64,
                    wake: Vec::new(),
                });
            JoinHandle {
                real,
                model: Some((sched, tid)),
            }
        }
    }
}

/// Sleep; a pure yield point under the model (no wall-clock wait — the model
/// checks logical interleavings, not timing).
pub fn sleep(dur: Duration) {
    match current_ctx() {
        None => std::thread::sleep(dur),
        Some(ctx) => {
            ctx.sched
                .op(ctx.tid, op_tag(OP_YIELD, dur.subsec_nanos() as u64), || {
                    Attempt::Ready {
                        value: (),
                        obs: 0,
                        wake: Vec::new(),
                    }
                });
        }
    }
}

/// Cooperatively yield; a scheduling point under the model.
pub fn yield_now() {
    match current_ctx() {
        None => std::thread::yield_now(),
        Some(ctx) => {
            ctx.sched
                .op(ctx.tid, op_tag(OP_YIELD, 0), || Attempt::Ready {
                    value: (),
                    obs: 0,
                    wake: Vec::new(),
                });
        }
    }
}
