//! Self-tests for the loomette model checker: the scheduler must find seeded
//! concurrency bugs within a bounded number of interleavings, reproduce them
//! from a recorded trace, detect deadlocks, and stay deterministic.

use std::sync::Arc;

use loomette::panic::AssertUnwindSafe;
use loomette::sync::{mpsc, Mutex};
use loomette::thread;
use loomette::{explore, replay, Config, ViolationKind};

/// Classic check-then-act lost update: each thread reads the counter under
/// one critical section and writes the incremented value under another, so a
/// preemption in the window between them loses an increment.
fn racy_increment_body() {
    let value = Arc::new(Mutex::new(0u32));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let value = Arc::clone(&value);
            thread::spawn(move || {
                let read = *value.lock().expect("unpoisoned");
                let mut guard = value.lock().expect("unpoisoned");
                *guard = read + 1;
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panic");
    }
    let total = *value.lock().expect("unpoisoned");
    assert_eq!(total, 2, "lost update: total {total}");
}

#[test]
fn dfs_flags_the_seeded_data_race_within_bounded_interleavings() {
    let report = explore(Config::default(), racy_increment_body);
    let violation = report
        .violation
        .as_ref()
        .expect("the lost-update race must be found");
    assert_eq!(violation.kind, ViolationKind::Panic);
    assert!(
        violation.message.contains("lost update"),
        "unexpected violation: {violation}"
    );
    assert!(
        report.executions <= 200,
        "race should surface within a small bounded search, took {} executions",
        report.executions
    );
}

#[test]
fn a_recorded_failing_trace_replays_to_the_same_violation() {
    let report = explore(Config::default(), racy_increment_body);
    let violation = report.violation.expect("race found");
    // The trace is the replayable "seed": one deterministic re-execution
    // reproduces the exact failing interleaving.
    let replayed = replay(Config::default(), &violation.trace, racy_increment_body);
    let again = replayed
        .violation
        .expect("replaying the failing trace must fail again");
    assert_eq!(again.kind, ViolationKind::Panic);
    assert_eq!(again.message, violation.message);
    assert_eq!(again.trace, violation.trace);
}

#[test]
fn zero_preemption_budget_cannot_see_the_race_and_exhausts_cleanly() {
    // With no preemptions each spawned thread runs its two critical sections
    // back to back, so the increments serialize and the bug is invisible —
    // demonstrating that the preemption bound trades coverage for tractability.
    let config = Config {
        max_preemptions: Some(0),
        ..Config::default()
    };
    let report = explore(config, racy_increment_body);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

#[test]
fn abba_lock_order_deadlock_is_detected() {
    let report = explore(Config::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            let _ga = a1.lock().expect("unpoisoned");
            let _gb = b1.lock().expect("unpoisoned");
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            let _gb = b2.lock().expect("unpoisoned");
            let _ga = a2.lock().expect("unpoisoned");
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    let violation = report.violation.expect("ABBA deadlock must be found");
    assert_eq!(violation.kind, ViolationKind::Deadlock);
    assert!(!violation.trace.is_empty());
}

#[test]
fn bounded_channel_keeps_fifo_order_in_every_interleaving() {
    let report = explore(Config::default(), || {
        let (tx, rx) = mpsc::sync_channel::<u32>(1);
        let producer = thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2]);
        producer.join().expect("no panic");
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
    assert!(report.executions >= 2, "backpressure must create branches");
}

#[test]
fn disconnected_endpoints_error_instead_of_hanging() {
    let report = explore(Config::default(), || {
        let (tx, rx) = mpsc::sync_channel::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
        let (tx2, rx2) = mpsc::channel::<u32>();
        drop(tx2);
        assert!(rx2.recv().is_err());
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

#[test]
fn a_caught_panic_poisons_the_mutex_but_is_not_a_violation() {
    let report = explore(Config::default(), || {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let caught = loomette::panic::catch_unwind(AssertUnwindSafe(|| {
                let _g = m2.lock().expect("unpoisoned");
                panic!("contained crash");
            }));
            assert!(caught.is_err());
        });
        t.join().expect("worker contained its panic");
        // Poison is recoverable and the lock is not wedged.
        let v = match m.lock() {
            Ok(guard) => *guard,
            Err(poisoned) => *poisoned.into_inner(),
        };
        assert_eq!(v, 0);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

#[test]
fn exploration_is_deterministic_run_to_run() {
    let run = || explore(Config::default(), racy_increment_body);
    let (a, b) = (run(), run());
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.distinct_states, b.distinct_states);
    assert_eq!(
        a.violation.expect("found").trace,
        b.violation.expect("found").trace
    );
}

#[test]
fn primitives_pass_through_outside_a_model_execution() {
    // No explore() wrapper: everything must behave exactly like std.
    let m = Mutex::new(5u32);
    *m.lock().expect("unpoisoned") += 1;
    assert_eq!(*m.lock().expect("unpoisoned"), 6);

    let (tx, rx) = mpsc::sync_channel::<u32>(2);
    let worker = thread::spawn(move || {
        for i in 0..4 {
            tx.send(i).expect("receiver alive");
        }
    });
    let got: Vec<u32> = rx.into_iter().collect();
    assert_eq!(got, vec![0, 1, 2, 3]);
    worker.join().expect("no panic");
}

#[test]
fn once_lock_publication_is_ordered_against_concurrent_reads() {
    use loomette::sync::OnceLock;
    // A publisher stores once; a reader polls twice. In every interleaving a
    // read either misses (None) or sees the full published value — and once a
    // read hits, later reads on the same cell hit too (the cell is monotone).
    let report = explore(Config::default(), || {
        let cell: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.set(0xfeed)
                    .expect("single publisher never loses the set race");
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let first = cell.get().copied();
                let second = cell.get().copied();
                for v in [first, second] {
                    assert!(v.is_none() || v == Some(0xfeed), "torn read: {v:?}");
                }
                assert!(
                    !(first.is_some() && second.is_none()),
                    "a published value must stay visible"
                );
            })
        };
        writer.join().expect("no panic");
        reader.join().expect("no panic");
        assert_eq!(cell.get().copied(), Some(0xfeed));
    });
    assert!(report.complete, "bounded space must exhaust: {report}");
    assert!(report.violation.is_none(), "{report}");
    // the reader really interleaves with the writer: both orders of the first
    // read against the set are explored
    assert!(report.executions > 1, "{report}");
}

#[test]
fn once_lock_passes_through_outside_a_model_execution() {
    use loomette::sync::OnceLock;
    let mut cell: OnceLock<String> = OnceLock::new();
    assert!(cell.get().is_none());
    cell.set("v".to_string()).expect("first set wins");
    assert!(cell.set("w".to_string()).is_err());
    assert_eq!(cell.get().map(String::as_str), Some("v"));
    assert_eq!(cell.take(), Some("v".to_string()));
    assert!(cell.get().is_none());
}
