//! Offline stand-in for the `rayon` crate.
//!
//! The real rayon is a work-stealing thread pool; this workspace vendors a small
//! API-compatible subset (the container cannot fetch crates.io). Parallel iterators
//! materialise their input, split it into one contiguous chunk per worker and fan the
//! chunks out with [`std::thread::scope`], preserving input order in the collected
//! output. `ThreadPoolBuilder::build` + [`ThreadPool::install`] set a thread-local
//! worker count that [`current_num_threads`] and the iterators observe, which is all
//! the benchmark harness needs to reproduce the paper's 1- vs 8-thread series.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::ops::Range;

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations currently use: the size of the
/// innermost [`ThreadPool::install`] scope, or the machine parallelism outside one.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by this stand-in,
/// kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Create a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: None }
    }

    /// Set the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool. Infallible here, but returns `Result` like the real rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self
            .num_threads
            .filter(|&n| n > 0)
            .unwrap_or_else(current_num_threads);
        Ok(ThreadPool {
            num_threads: threads,
        })
    }
}

/// A "pool": a worker count that [`install`](ThreadPool::install) makes current for
/// the duration of a closure. Workers are spawned per parallel operation.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count as the current parallelism.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let previous = CURRENT_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let result = op();
        CURRENT_THREADS.with(|c| c.set(previous));
        result
    }

    /// The worker count this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Run `f(item)` over all items on `threads` workers, preserving input order.
fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A materialised parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Map each item through `f` in parallel, keeping only the `Some` results.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<T, F>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        ParFilterMap {
            items: self.items,
            f,
        }
    }

    /// Collect the (unmapped) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// The result of [`ParIter::filter_map`]: a pending parallel filter-map.
pub struct ParFilterMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParFilterMap<T, F>
where
    T: Send,
{
    /// Execute on the current worker count; surviving results keep input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
        C: FromIterator<R>,
    {
        run_chunked(self.items, self.f)
            .into_iter()
            .flatten()
            .collect()
    }
}

/// The result of [`ParIter::map`]: a pending parallel map.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
{
    /// Execute the map on the current worker count and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_chunked(self.items, self.f).into_iter().collect()
    }
}

/// Types convertible into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iteration over slices (rayon's `IntoParallelRefIterator`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The rayon prelude: glob-import to bring the iterator traits into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data = [1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(data.len(), 4); // still usable
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 1);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn empty_input_collects_empty() {
        let out: Vec<usize> = (0..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
