//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the genuine ChaCha stream cipher with 8 double-rounds as a random
//! number generator ([`ChaCha8Rng`]) behind the vendored `rand` traits. The key is
//! expanded from the `seed_from_u64` state with SplitMix64, so the output stream is
//! *not* bit-identical to the upstream crate — determinism per seed (all this
//! workspace relies on) holds, cross-crate stream equality does not.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// SplitMix64 step, used for key expansion only.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A ChaCha generator with 8 double-rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key (8 words) and nonce (2 words), fixed per seed.
    key: [u32; 8],
    nonce: [u32; 2],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    cursor: usize,
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.nonce[0],
            self.nonce[1],
        ];
        let initial = state;
        for _ in 0..Self::ROUNDS / 2 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        let nonce_word = splitmix64(&mut sm);
        ChaCha8Rng {
            key,
            nonce: [nonce_word as u32, (nonce_word >> 32) as u32],
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let sa: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn quarter_round_matches_rfc7539_vector() {
        // RFC 7539 §2.1.1 test vector
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    #[test]
    fn output_looks_balanced() {
        // crude sanity check: bits are roughly half set
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let expected = 1000 * 32;
        assert!(
            (ones as i64 - expected as i64).abs() < 2000,
            "ones = {ones}"
        );
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let x: usize = rng.gen_range(0..10);
            assert!(x < 10);
        }
    }
}
