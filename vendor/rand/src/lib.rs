//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides exactly the surface the workspace uses: [`RngCore`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`seq::SliceRandom::choose`]. Generators live elsewhere (see the vendored
//! `rand_chacha`); this crate only defines the traits and distribution helpers.
//!
//! The integer `gen_range` uses plain rejection-free modulo reduction. Its bias is
//! bounded by `span / 2^64`, which is negligible for the workload-generation use in
//! this repository (spans ≪ 2^32) — and irrelevant for correctness, since nothing
//! depends on exact uniformity.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (defaults to the high half of
    /// [`next_u64`](RngCore::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random by [`Rng::gen`] (rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draw one value in `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u64, usize, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        let unit = f64::sample_standard(rng);
        // clamp below hi so the half-open contract holds even under rounding
        (lo + unit * (hi - lo)).min(hi - (hi - lo) * f64::EPSILON)
    }
}

/// Extension methods over any [`RngCore`] (the rand `Rng` trait).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_in(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random selection from slices (the rand `SliceRandom` subset in use).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StepRng(u64);

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StepRng(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_from_slice() {
        use seq::SliceRandom;
        let mut rng = StepRng(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10u8, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        // `&mut R` forwarding keeps trait-object-style call sites working
        let mut rng = StepRng(9);
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100)
        }
        assert!(draw(&mut rng) < 100);
    }
}
