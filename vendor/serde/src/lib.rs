//! Offline stand-in for the `serde` crate.
//!
//! Nothing in this workspace serialises the derived model types through serde's data
//! model — the derives exist so the types advertise serialisability (and the JSON the
//! benchmark binaries emit is built with the vendored `serde_json`'s `json!`). The
//! traits are therefore plain markers, and the derive macros (re-exported from the
//! vendored `serde_derive`) emit empty impls.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type can be serialised. (Method-less stand-in for serde's trait.)
pub trait Serialize {}

/// Marker: the type can be deserialised. (Method-less stand-in for serde's trait;
/// the `'de` lifetime of the real trait is dropped since nothing names it.)
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    char,
    String
);

impl Serialize for &str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for &T {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}
