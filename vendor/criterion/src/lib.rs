//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark a configurable number of samples, reports the
//! median / min / max wall-clock time per iteration, and prints one line per
//! benchmark id. No statistics engine, no HTML reports, no CLI filtering — enough to
//! make `cargo bench` produce comparable numbers offline with unchanged bench code.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration durations, filled by [`Bencher::iter`].
    measurements: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measurements.push(start.elapsed());
        }
    }
}

fn report(label: &str, measurements: &mut [Duration]) {
    if measurements.is_empty() {
        println!("{label:<60} (no measurements)");
        return;
    }
    measurements.sort_unstable();
    let median = measurements[measurements.len() / 2];
    let min = measurements[0];
    let max = measurements[measurements.len() - 1];
    println!(
        "{label:<60} median {median:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        measurements.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (criterion's default is 100;
    /// this stand-in defaults to 10 to keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), input, routine)
    }

    /// Benchmark a closure without an explicit input.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), &(), move |b, _| routine(b))
    }

    fn run<I: ?Sized>(
        &mut self,
        id: String,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measurements: Vec::new(),
        };
        routine(&mut bencher, input);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut bencher.measurements);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// End the group (a no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmark a closure directly on the driver.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone())
            .bench_function("", routine);
        self
    }

    /// Number of benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench-target `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_and_counts() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("demo");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.finish();
        }
        assert_eq!(c.benchmarks_run(), 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
